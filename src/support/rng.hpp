// Deterministic pseudo-random number generation.
//
// Randomness in this codebase is used ONLY for (a) the randomized baseline
// algorithms (Luby, Israeli–Itai) and (b) workload generation. The
// deterministic algorithms never draw random bits; their "hash values" come
// from seed-indexed k-wise independent families (src/hash). A fixed-seed
// xoshiro generator keeps every experiment reproducible run-to-run.
#pragma once

#include <cstdint>
#include <vector>

namespace dmpc {

/// splitmix64: used to expand a user seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli(p).
  bool next_bool(double p);

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<std::uint32_t> permutation(std::uint32_t n);

  // Standard UniformRandomBitGenerator interface, so Rng works with <random>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace dmpc
