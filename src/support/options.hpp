// Tiny command-line option parser for examples and benchmark drivers.
//
// Accepts --key=value and --flag forms; anything else is a positional
// argument. Deliberately minimal — examples should read like scripts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dmpc {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dmpc
