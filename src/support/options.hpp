// Tiny command-line option parser for examples and benchmark drivers.
//
// Accepts --key=value and --flag forms; anything else is a positional
// argument. Deliberately minimal — examples should read like scripts.
//
// The lenient get_int/get_double accessors keep their historical
// garbage-tolerant behavior (strtoll/strtod prefix parse) for benchmark
// scripts; front ends handling untrusted argv should use the require_*
// accessors, which throw a typed dmpc::ParseError naming the option and the
// offending token instead of silently misreading it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dmpc {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Strict variants: the whole value must parse (optional leading '-' for
  /// the int form, strtod consuming every byte for the double form), else a
  /// dmpc::ParseError with code kBadToken / kOverflow and the option name in
  /// the message. Absent keys still yield the fallback.
  std::int64_t require_int(const std::string& key, std::int64_t fallback) const;
  double require_double(const std::string& key, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dmpc
