// Small integer-math helpers used throughout the library.
#pragma once

#include <bit>
#include <cstdint>
#include <cmath>

#include "support/check.hpp"

namespace dmpc {

/// floor(log2(x)) for x >= 1.
inline int floor_log2(std::uint64_t x) {
  DMPC_CHECK(x >= 1);
  return 63 - std::countl_zero(x);
}

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
inline int ceil_log2(std::uint64_t x) {
  DMPC_CHECK(x >= 1);
  return x == 1 ? 0 : floor_log2(x - 1) + 1;
}

/// ceil(a / b) for b > 0.
inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  DMPC_CHECK(b > 0);
  return (a + b - 1) / b;
}

/// Integer power with overflow check (caps at max, asserting no wrap).
inline std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  while (exp-- > 0) {
    DMPC_CHECK_MSG(base == 0 || r <= UINT64_MAX / (base == 0 ? 1 : base),
                   "ipow overflow");
    r *= base;
  }
  return r;
}

/// floor(n^p) for real exponent p in (0, 1]; used for space bounds n^eps.
inline std::uint64_t ipow_real(std::uint64_t n, double p) {
  DMPC_CHECK(p > 0.0 && p <= 8.0);
  double v = std::pow(static_cast<double>(n), p);
  DMPC_CHECK(v < 1.8e19);
  return static_cast<std::uint64_t>(v);
}

/// floor(sqrt(x)), exact for all 64-bit inputs.
inline std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

/// Round x up to the next power of two (x >= 1).
inline std::uint64_t next_pow2(std::uint64_t x) {
  DMPC_CHECK(x >= 1);
  return std::bit_ceil(x);
}

}  // namespace dmpc
