#include "support/parse_error.hpp"

#include <cstddef>
#include <sstream>

namespace dmpc {

const char* parse_error_code_name(ParseErrorCode code) {
  switch (code) {
    case ParseErrorCode::kIoError:
      return "io_error";
    case ParseErrorCode::kMalformedLine:
      return "malformed_line";
    case ParseErrorCode::kBadToken:
      return "bad_token";
    case ParseErrorCode::kOverflow:
      return "overflow";
    case ParseErrorCode::kBadHeader:
      return "bad_header";
    case ParseErrorCode::kLimitExceeded:
      return "limit_exceeded";
    case ParseErrorCode::kOutOfRange:
      return "out_of_range";
    case ParseErrorCode::kSelfLoop:
      return "self_loop";
    case ParseErrorCode::kDuplicateEdge:
      return "duplicate_edge";
    case ParseErrorCode::kCountMismatch:
      return "count_mismatch";
    case ParseErrorCode::kShardLimitExceeded:
      return "shard_limit_exceeded";
  }
  return "unknown";
}

std::string ParseError::format(ParseErrorCode code, const std::string& message,
                               std::uint64_t line, std::uint64_t column,
                               const std::string& token) {
  std::ostringstream os;
  os << "parse error [" << parse_error_code_name(code) << "]";
  if (line > 0) {
    os << " at line " << line;
    if (column > 0) os << ", column " << column;
  }
  os << ": " << message;
  if (!token.empty()) os << " (got '" << token << "')";
  return os.str();
}

namespace parse {

bool parse_u64(const std::string& token, std::uint64_t* value, bool* overflow) {
  if (overflow != nullptr) *overflow = false;
  if (token.empty()) return false;
  std::uint64_t out = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10) {
      if (overflow != nullptr) *overflow = true;
      return false;
    }
    out = out * 10 + digit;
  }
  *value = out;
  return true;
}

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) {
      out.push_back({line.substr(start, i - start),
                     static_cast<std::uint64_t>(start) + 1});
    }
  }
  return out;
}

std::string clip(const std::string& token) {
  constexpr std::size_t kMax = 64;
  if (token.size() <= kMax) return token;
  return token.substr(0, kMax) + "...";
}

std::uint64_t require_u64(const Token& tok, std::uint64_t line) {
  std::uint64_t value = 0;
  bool overflow = false;
  if (!parse_u64(tok.text, &value, &overflow)) {
    if (overflow) {
      throw ParseError(ParseErrorCode::kOverflow,
                       "numeric token exceeds 64-bit range", line, tok.column,
                       clip(tok.text));
    }
    throw ParseError(ParseErrorCode::kBadToken, "expected unsigned integer",
                     line, tok.column, clip(tok.text));
  }
  return value;
}

}  // namespace parse

}  // namespace dmpc
