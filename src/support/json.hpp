// Minimal JSON value + serializer/parser for run reports and tooling output.
// Deliberately small: objects preserve insertion order, numbers are stored
// as double or int64 (a numeric token without '.', 'e', or 'E' parses as
// int64, so integer-exact artifacts round-trip byte-identically).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace dmpc {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  Json(std::uint32_t u) : value_(static_cast<std::int64_t>(u)) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  /// Parse a complete JSON document (trailing whitespace allowed, nothing
  /// else). Throws dmpc::ParseError (kMalformedLine / kBadToken /
  /// kLimitExceeded) with 1-based line/column on malformed input.
  static Json parse(const std::string& text);

  /// Read and parse a file; throws ParseError(kIoError) when unreadable.
  static Json parse_file(const std::string& path);

  /// Object field (creates/overwrites); asserts this is an object.
  Json& set(const std::string& key, Json value);

  /// Array append; asserts this is an array.
  Json& push(Json value);

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }

  /// Typed accessors; DMPC_CHECK on type mismatch. as_double accepts int64.
  bool as_bool() const;
  std::int64_t as_int64() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& items() const;
  const Object& fields() const;

  /// Object member lookup (first match); nullptr when absent or non-object.
  const Json* find(const std::string& key) const;
  /// Object member lookup; DMPC_CHECK when absent.
  const Json& at(const std::string& key) const;
  /// Array / object element count; DMPC_CHECK otherwise.
  std::size_t size() const;

  /// Serialize; indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array,
               Object>
      value_;
};

}  // namespace dmpc
