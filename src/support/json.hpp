// Minimal JSON value + serializer for run reports and tooling output.
// Deliberately small: objects preserve insertion order, numbers are stored
// as double or int64, no parsing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace dmpc {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  Json(std::uint32_t u) : value_(static_cast<std::int64_t>(u)) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  /// Object field (creates/overwrites); asserts this is an object.
  Json& set(const std::string& key, Json value);

  /// Array append; asserts this is an array.
  Json& push(Json value);

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  /// Serialize; indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array,
               Object>
      value_;
};

}  // namespace dmpc
