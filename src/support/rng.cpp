#include "support/rng.hpp"

#include <numeric>

#include "support/check.hpp"

namespace dmpc {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DMPC_CHECK(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t i = n; i > 1; --i) {
    auto j = static_cast<std::uint32_t>(next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace dmpc
