// Runtime checking macros.
//
// The simulator and the derandomized algorithms enforce their guarantees
// (space bounds, sparsification invariants, progress thresholds) with
// DMPC_CHECK, which is active in all build types: a violated guarantee is a
// bug in the reproduction, not a recoverable condition, and the tests rely
// on these throwing.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dmpc {

/// Thrown when an internal invariant or a model constraint is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "DMPC_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace dmpc

#define DMPC_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) ::dmpc::detail::check_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define DMPC_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::dmpc::detail::check_fail(#cond, __FILE__, __LINE__, os_.str());   \
    }                                                                     \
  } while (0)
