#include "support/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/check.hpp"
#include "support/parse_error.hpp"

namespace dmpc {

Json& Json::set(const std::string& key, Json value) {
  DMPC_CHECK_MSG(is_object(), "Json::set on non-object");
  auto& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  DMPC_CHECK_MSG(is_array(), "Json::push on non-array");
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_newline_indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

void Json::dump_to(std::string* out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    *out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    *out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    DMPC_CHECK_MSG(std::isfinite(*d), "non-finite number in Json");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", *d);
    *out += buf;
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    *out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    append_escaped(out, *s);
  } else if (const auto* a = std::get_if<Array>(&value_)) {
    if (a->empty()) {
      *out += "[]";
      return;
    }
    out->push_back('[');
    for (std::size_t idx = 0; idx < a->size(); ++idx) {
      if (idx > 0) out->push_back(',');
      append_newline_indent(out, indent, depth + 1);
      (*a)[idx].dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out->push_back(']');
  } else if (const auto* o = std::get_if<Object>(&value_)) {
    if (o->empty()) {
      *out += "{}";
      return;
    }
    out->push_back('{');
    for (std::size_t idx = 0; idx < o->size(); ++idx) {
      if (idx > 0) out->push_back(',');
      append_newline_indent(out, indent, depth + 1);
      append_escaped(out, (*o)[idx].first);
      *out += indent > 0 ? ": " : ":";
      (*o)[idx].second.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out->push_back('}');
  }
}

bool Json::as_bool() const {
  DMPC_CHECK_MSG(is_bool(), "Json::as_bool on non-bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int64() const {
  DMPC_CHECK_MSG(is_int(), "Json::as_int64 on non-integer");
  return std::get<std::int64_t>(value_);
}

double Json::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  DMPC_CHECK_MSG(is_double(), "Json::as_double on non-number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  DMPC_CHECK_MSG(is_string(), "Json::as_string on non-string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::items() const {
  DMPC_CHECK_MSG(is_array(), "Json::items on non-array");
  return std::get<Array>(value_);
}

const Json::Object& Json::fields() const {
  DMPC_CHECK_MSG(is_object(), "Json::fields on non-object");
  return std::get<Object>(value_);
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  DMPC_CHECK_MSG(found != nullptr, "Json::at missing key: " + key);
  return *found;
}

std::size_t Json::size() const {
  if (const auto* a = std::get_if<Array>(&value_)) return a->size();
  if (const auto* o = std::get_if<Object>(&value_)) return o->size();
  DMPC_CHECK_MSG(false, "Json::size on non-container");
  return 0;
}

namespace {

// Recursive-descent parser. Tracks 1-based line/column for ParseError and
// bounds nesting depth so adversarial input cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 96;

  [[noreturn]] void fail(const std::string& message,
                         ParseErrorCode code = ParseErrorCode::kMalformedLine) {
    std::string token;
    if (pos_ < text_.size()) token = parse::clip(text_.substr(pos_, 16));
    throw ParseError(code, message, line_, column_, token);
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    advance();
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    for (std::size_t i = 0; i < len; ++i) advance();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting depth exceeds limit", ParseErrorCode::kLimitExceeded);
    }
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal", ParseErrorCode::kBadToken);
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal", ParseErrorCode::kBadToken);
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal", ParseErrorCode::kBadToken);
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      advance();
      return out;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(key, parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        advance();
        continue;
      }
      if (next == '}') {
        advance();
        return out;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      advance();
      return out;
    }
    while (true) {
      out.push(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        advance();
        continue;
      }
      if (next == ']') {
        advance();
        return out;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        advance();
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string", ParseErrorCode::kBadToken);
      }
      if (c != '\\') {
        out.push_back(c);
        advance();
        continue;
      }
      advance();  // backslash
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_];
      advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          std::uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("unterminated \\u escape");
            const char h = text_[pos_];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<std::uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<std::uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<std::uint32_t>(h - 'A' + 10);
            } else {
              fail("bad \\u escape", ParseErrorCode::kBadToken);
            }
            advance();
          }
          // Serializer only emits \u00xx for control bytes; decode the BMP
          // subset as UTF-8 and reject surrogates.
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escape unsupported", ParseErrorCode::kBadToken);
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape", ParseErrorCode::kBadToken);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') advance();
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      fail("expected value", ParseErrorCode::kBadToken);
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      advance();
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      advance();
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number", ParseErrorCode::kBadToken);
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        advance();
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      advance();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        advance();
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent", ParseErrorCode::kBadToken);
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        advance();
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE) {
        throw ParseError(ParseErrorCode::kOverflow, "integer out of range",
                         line_, column_, parse::clip(token));
      }
      if (end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(v));
      }
      // Fall through defensively (cannot happen given the scan above).
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (errno == ERANGE || !std::isfinite(v)) {
      throw ParseError(ParseErrorCode::kOverflow, "number out of range", line_,
                       column_, parse::clip(token));
    }
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::uint64_t line_ = 1;
  std::uint64_t column_ = 1;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError(ParseErrorCode::kIoError,
                     "cannot open " + path + ": " + std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw ParseError(ParseErrorCode::kIoError, "read error on " + path);
  }
  return parse(buffer.str());
}

}  // namespace dmpc
