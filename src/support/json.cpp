#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace dmpc {

Json& Json::set(const std::string& key, Json value) {
  DMPC_CHECK_MSG(is_object(), "Json::set on non-object");
  auto& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  DMPC_CHECK_MSG(is_array(), "Json::push on non-array");
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_newline_indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

void Json::dump_to(std::string* out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    *out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    *out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    DMPC_CHECK_MSG(std::isfinite(*d), "non-finite number in Json");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", *d);
    *out += buf;
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    *out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    append_escaped(out, *s);
  } else if (const auto* a = std::get_if<Array>(&value_)) {
    if (a->empty()) {
      *out += "[]";
      return;
    }
    out->push_back('[');
    for (std::size_t idx = 0; idx < a->size(); ++idx) {
      if (idx > 0) out->push_back(',');
      append_newline_indent(out, indent, depth + 1);
      (*a)[idx].dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out->push_back(']');
  } else if (const auto* o = std::get_if<Object>(&value_)) {
    if (o->empty()) {
      *out += "{}";
      return;
    }
    out->push_back('{');
    for (std::size_t idx = 0; idx < o->size(); ++idx) {
      if (idx > 0) out->push_back(',');
      append_newline_indent(out, indent, depth + 1);
      append_escaped(out, (*o)[idx].first);
      *out += indent > 0 ? ": " : ":";
      (*o)[idx].second.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out->push_back('}');
  }
}

}  // namespace dmpc
