// Typed, recoverable errors for every untrusted parse surface.
//
// The edge-list reader, the fault-plan parser, and the CLI option parser all
// consume bytes a user (or an adversary) controls. Historically a malformed
// input surfaced as a DMPC_CHECK failure — correct but hostile (a file:line
// assertion for the *caller's* data) and indistinguishable from a genuine
// internal bug. ParseError is the recoverable path: a stable error code, the
// 1-based line/column of the offending byte, and the offending token, so
// front ends can print a precise diagnostic and exit cleanly, and fuzzers can
// separate "typed rejection" (fine) from "anything else escaped" (a finding).
//
// ParseError derives from CheckFailure so pre-existing catch sites keep
// working; new code should catch ParseError first and inspect code().
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace dmpc {

/// Stable identifier for each class of input defect.
enum class ParseErrorCode : std::uint8_t {
  kIoError = 1,       ///< Cannot open/read/write the underlying stream.
  kMalformedLine,     ///< A line does not match the expected shape.
  kBadToken,          ///< A token is not of the expected type (e.g. numeric).
  kOverflow,          ///< A numeric token exceeds the representable range.
  kBadHeader,         ///< The "n m" header is out of the accepted range.
  kLimitExceeded,     ///< Input exceeds a configured hard cap (n, m, line).
  kOutOfRange,        ///< A value violates a declared bound (edge endpoint).
  kSelfLoop,          ///< An edge with identical endpoints.
  kDuplicateEdge,     ///< An edge listed more than once.
  kCountMismatch,     ///< Declared count disagrees with the data.
  kShardLimitExceeded,  ///< A binary shard manifest exceeds EdgeListLimits.
};

/// Short stable name for a code ("bad_token", ...), for logs and tests.
const char* parse_error_code_name(ParseErrorCode code);

/// Thrown by hardened parsers on malformed untrusted input. Recoverable by
/// construction: parsers throwing ParseError leave no partial global state
/// behind, so callers can report and continue.
class ParseError : public CheckFailure {
 public:
  ParseError(ParseErrorCode code, std::string message, std::uint64_t line = 0,
             std::uint64_t column = 0, std::string token = {})
      : CheckFailure(format(code, message, line, column, token)),
        code_(code),
        line_(line),
        column_(column),
        token_(std::move(token)),
        message_(std::move(message)) {}

  ParseErrorCode code() const { return code_; }
  /// 1-based line of the offending token; 0 when not line-oriented (CLI
  /// options, file-open failures).
  std::uint64_t line() const { return line_; }
  /// 1-based column of the offending token; 0 when unknown.
  std::uint64_t column() const { return column_; }
  /// The offending token verbatim (possibly truncated), empty when unknown.
  const std::string& token() const { return token_; }
  /// The human-readable description without the location prefix.
  const std::string& message() const { return message_; }

 private:
  static std::string format(ParseErrorCode code, const std::string& message,
                            std::uint64_t line, std::uint64_t column,
                            const std::string& token);

  ParseErrorCode code_;
  std::uint64_t line_;
  std::uint64_t column_;
  std::string token_;
  std::string message_;
};

namespace parse {

/// Strict base-10 u64 parse with overflow detection: the whole token must be
/// digits and the value must fit. Returns false (leaving *value untouched)
/// otherwise; `overflow` (optional) distinguishes the overflow case.
bool parse_u64(const std::string& token, std::uint64_t* value,
               bool* overflow = nullptr);

/// A whitespace-delimited token with its 1-based column.
struct Token {
  std::string text;
  std::uint64_t column = 0;
};

/// Split a line on spaces/tabs, recording each token's 1-based column.
std::vector<Token> tokenize(const std::string& line);

/// A token as shown in a diagnostic, truncated so a pathological input line
/// cannot balloon the error message.
std::string clip(const std::string& token);

/// parse_u64 or throw ParseError (kBadToken / kOverflow) locating `tok`.
std::uint64_t require_u64(const Token& tok, std::uint64_t line);

}  // namespace parse

}  // namespace dmpc
