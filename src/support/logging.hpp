// Minimal leveled logging to stderr.
//
// The library itself is quiet by default; algorithms log per-iteration
// progress at Debug level so experiments can be traced without recompiling.
#pragma once

#include <sstream>
#include <string>

namespace dmpc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a DMPC_LOG_LEVEL value: debug|info|warn|error|off, case-insensitive,
/// surrounding whitespace ignored. Returns true and sets `out` when
/// recognized; returns false and leaves `out` untouched otherwise (the env
/// reader then keeps the default and warns once). Exposed for tests.
bool parse_log_level(const std::string& value, LogLevel& out);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace dmpc

#define DMPC_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::dmpc::log_level())) { \
      std::ostringstream os_;                                       \
      os_ << expr;                                                  \
      ::dmpc::detail::log_emit(level, os_.str());                   \
    }                                                               \
  } while (0)

#define DMPC_DEBUG(expr) DMPC_LOG(::dmpc::LogLevel::kDebug, expr)
#define DMPC_INFO(expr) DMPC_LOG(::dmpc::LogLevel::kInfo, expr)
#define DMPC_WARN(expr) DMPC_LOG(::dmpc::LogLevel::kWarn, expr)
#define DMPC_ERROR(expr) DMPC_LOG(::dmpc::LogLevel::kError, expr)
