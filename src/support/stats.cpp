#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dmpc {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunningStats::min() const {
  DMPC_CHECK(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  DMPC_CHECK(count_ > 0);
  return max_;
}

double RunningStats::mean() const {
  DMPC_CHECK(count_ > 0);
  return sum_ / static_cast<double>(count_);
}

double RunningStats::variance() const {
  DMPC_CHECK(count_ > 0);
  const double m = mean();
  double v = sum_sq_ / static_cast<double>(count_) - m * m;
  return v < 0 ? 0 : v;  // guard tiny negative from rounding
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  DMPC_CHECK(!values.empty());
  DMPC_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  DMPC_CHECK(hi > lo);
  DMPC_CHECK(bins > 0);
}

void Histogram::add(double x) {
  std::size_t bin;
  if (x <= lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                   static_cast<double>(counts_.size()));
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  DMPC_CHECK(x.size() == y.size());
  DMPC_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  DMPC_CHECK_MSG(std::abs(denom) > 1e-12, "degenerate x values in fit");
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot <= 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace dmpc
