// Immutable undirected graph in CSR form.
//
// Nodes are 0..n-1. Edges are stored once in canonical (u < v) order and
// assigned stable EdgeIds; the adjacency arrays additionally carry, for each
// (node, neighbor) slot, the EdgeId of the connecting edge, so algorithms
// that work on edges (matching, line-graph simulation) can translate between
// the two views in O(1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dmpc::exec {
class Executor;
}

namespace dmpc::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  /// Build from an edge list. Self-loops are rejected; duplicate edges are
  /// collapsed. Node ids must be < n.
  static Graph from_edges(NodeId n, std::vector<Edge> edges);

  /// As above, validating/sorting/verifying on the given host executor. The
  /// resulting graph is byte-identical to the serial build for any executor.
  static Graph from_edges(NodeId n, std::vector<Edge> edges,
                          const exec::Executor& ex);

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::uint32_t max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// EdgeIds incident to v, aligned with neighbors(v).
  std::span<const EdgeId> incident_edges(NodeId v) const {
    return {incident_.data() + offsets_[v], incident_.data() + offsets_[v + 1]};
  }

  /// The canonical (u < v) endpoints of an edge.
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// All canonical edges, indexed by EdgeId.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Binary search in the sorted adjacency of u.
  bool has_edge(NodeId u, NodeId v) const;

  /// EdgeId of {u, v}, or kNoEdge.
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// The endpoint of e that is not v (v must be an endpoint).
  NodeId other_endpoint(EdgeId e, NodeId v) const;

 private:
  NodeId n_ = 0;
  std::uint32_t max_degree_ = 0;
  std::vector<std::uint64_t> offsets_;  // n+1
  std::vector<NodeId> adjacency_;       // 2m
  std::vector<EdgeId> incident_;        // 2m
  std::vector<Edge> edges_;             // m, canonical order
};

/// Degree of every node restricted to edges whose mask bit is set.
std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask);

/// Host-parallel variant (node-parallel over incident edges); identical
/// output for any executor.
std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask,
                                          const exec::Executor& ex);

/// Degree of every node restricted to alive nodes (an edge counts iff both
/// endpoints are alive).
std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive);

/// Host-parallel variant; identical output for any executor.
std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive,
                                         const exec::Executor& ex);

/// Number of edges with both endpoints alive.
EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive);

/// Host-parallel variant; identical output for any executor.
EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive,
                        const exec::Executor& ex);

/// Maximum alive degree.
std::uint32_t alive_max_degree(const Graph& g, const std::vector<bool>& alive);

}  // namespace dmpc::graph
