// Immutable undirected graph in CSR form, viewed through storage extents.
//
// Nodes are 0..n-1. Edges are stored once in canonical (u < v) order and
// assigned stable EdgeIds; the adjacency arrays additionally carry, for each
// (node, neighbor) slot, the EdgeId of the connecting edge, so algorithms
// that work on edges (matching, line-graph simulation) can translate between
// the two views in O(1).
//
// A Graph does not own its arrays. It is a view over one or more
// `GraphExtent`s — contiguous node/edge ranges whose CSR slices live in
// memory owned by a storage backend (`mpc::Storage`). The in-memory build
// path (`from_edges`) produces a single extent over heap vectors; the
// out-of-core path (`mpc::MmapShardStorage`) produces one extent per mapped
// shard. All accessors return identical values for identical logical graphs
// regardless of how the extents are cut, so every algorithm above this seam
// is storage-agnostic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

namespace dmpc::exec {
class Executor;
}

namespace dmpc::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// One contiguous slice of the CSR representation: nodes
/// [node_begin, node_end), their adjacency/incident slots
/// [slot_begin, slot_end), and canonical edges [edge_begin, edge_end).
/// `offsets` holds node_end - node_begin + 1 entries with *global* slot
/// values (offsets[0] == slot_begin), so extents can be concatenated without
/// rebasing. Pointers are non-owning; the Graph's residency handle keeps the
/// backing memory (heap vectors or mmap'd shards) alive.
struct GraphExtent {
  NodeId node_begin = 0;
  NodeId node_end = 0;
  EdgeId edge_begin = 0;
  EdgeId edge_end = 0;
  std::uint64_t slot_begin = 0;
  std::uint64_t slot_end = 0;
  const std::uint64_t* offsets = nullptr;  ///< node span + 1, global values.
  const NodeId* adjacency = nullptr;       ///< slot span.
  const EdgeId* incident = nullptr;        ///< slot span.
  const Edge* edges = nullptr;             ///< edge span, canonical order.
};

/// Read-only range over all canonical edges of a Graph in EdgeId order,
/// walking extents transparently. Forward iteration is pointer-bump within
/// an extent; random access falls back to the owning Graph's edge lookup.
class EdgeRange {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Edge;
    using difference_type = std::ptrdiff_t;
    using pointer = const Edge*;
    using reference = const Edge&;

    iterator() = default;

    reference operator*() const { return *cur_; }
    pointer operator->() const { return cur_; }

    iterator& operator++() {
      ++cur_;
      if (cur_ == stop_) advance_part();
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++*this;
      return old;
    }

    friend bool operator==(const iterator& a, const iterator& b) {
      return a.cur_ == b.cur_ && a.part_ == b.part_;
    }

   private:
    friend class EdgeRange;
    iterator(const GraphExtent* part, const GraphExtent* parts_end)
        : part_(part), parts_end_(parts_end) {
      cur_ = stop_ = nullptr;
      advance_part_initial();
    }

    void advance_part_initial() {
      while (part_ != parts_end_) {
        if (part_->edge_end > part_->edge_begin) {
          cur_ = part_->edges;
          stop_ = part_->edges + (part_->edge_end - part_->edge_begin);
          return;
        }
        ++part_;
      }
      cur_ = stop_ = nullptr;
    }

    void advance_part() {
      ++part_;
      advance_part_initial();
    }

    const GraphExtent* part_ = nullptr;
    const GraphExtent* parts_end_ = nullptr;
    const Edge* cur_ = nullptr;
    const Edge* stop_ = nullptr;
  };

  EdgeRange() = default;
  EdgeRange(const GraphExtent* parts, std::size_t num_parts, EdgeId m)
      : parts_(parts), num_parts_(num_parts), m_(m) {}

  iterator begin() const { return iterator(parts_, parts_ + num_parts_); }
  iterator end() const {
    return iterator(parts_ + num_parts_, parts_ + num_parts_);
  }

  EdgeId size() const { return m_; }
  bool empty() const { return m_ == 0; }

  /// Element-wise equality (same edges in the same EdgeId order), regardless
  /// of how either side is cut into extents.
  friend bool operator==(const EdgeRange& a, const EdgeRange& b);
  friend bool operator==(const EdgeRange& a, const std::vector<Edge>& b);

 private:
  const GraphExtent* parts_ = nullptr;
  std::size_t num_parts_ = 0;
  EdgeId m_ = 0;
};

class Graph {
 public:
  Graph() = default;

  /// Build from an edge list. Self-loops are rejected; duplicate edges are
  /// collapsed. Node ids must be < n. The result is a single-extent graph
  /// whose arrays live on the heap (owned via the residency handle).
  static Graph from_edges(NodeId n, std::vector<Edge> edges);

  /// As above, validating/sorting/verifying on the given host executor. The
  /// resulting graph is byte-identical to the serial build for any executor.
  static Graph from_edges(NodeId n, std::vector<Edge> edges,
                          const exec::Executor& ex);

  /// Assemble a graph view over storage-owned extents. Extents must cover
  /// [0, n) nodes, [0, m) edges and [0, 2m) slots contiguously in order;
  /// `residency` keeps the backing memory alive for the view's lifetime.
  /// Checked with DMPC_CHECK (structural errors are programming bugs here —
  /// untrusted inputs are validated by the storage backend before this).
  static Graph from_extents(NodeId n, EdgeId m, std::uint32_t max_degree,
                            std::vector<GraphExtent> parts,
                            std::shared_ptr<const void> residency);

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return m_; }

  std::uint32_t degree(NodeId v) const {
    const GraphExtent& p = part_for_node(v);
    const std::uint64_t i = v - p.node_begin;
    return static_cast<std::uint32_t>(p.offsets[i + 1] - p.offsets[i]);
  }

  std::uint32_t max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const {
    const GraphExtent& p = part_for_node(v);
    const std::uint64_t i = v - p.node_begin;
    return {p.adjacency + (p.offsets[i] - p.slot_begin),
            p.adjacency + (p.offsets[i + 1] - p.slot_begin)};
  }

  /// EdgeIds incident to v, aligned with neighbors(v).
  std::span<const EdgeId> incident_edges(NodeId v) const {
    const GraphExtent& p = part_for_node(v);
    const std::uint64_t i = v - p.node_begin;
    return {p.incident + (p.offsets[i] - p.slot_begin),
            p.incident + (p.offsets[i + 1] - p.slot_begin)};
  }

  /// The canonical (u < v) endpoints of an edge.
  const Edge& edge(EdgeId e) const {
    const GraphExtent& p = part_for_edge(e);
    return p.edges[e - p.edge_begin];
  }

  /// All canonical edges, indexed by EdgeId.
  EdgeRange edges() const { return EdgeRange(parts_.data(), parts_.size(), m_); }

  /// The storage extents backing this view (one for in-memory graphs, one
  /// per shard for mapped graphs).
  std::span<const GraphExtent> extents() const { return parts_; }

  /// Binary search in the sorted adjacency of u.
  bool has_edge(NodeId u, NodeId v) const;

  /// EdgeId of {u, v}, or kNoEdge.
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// The endpoint of e that is not v (v must be an endpoint).
  NodeId other_endpoint(EdgeId e, NodeId v) const;

 private:
  const GraphExtent& part_for_node(NodeId v) const {
    if (parts_.size() == 1) return parts_.front();
    return *find_part_for_node(v);
  }
  const GraphExtent& part_for_edge(EdgeId e) const {
    if (parts_.size() == 1) return parts_.front();
    return *find_part_for_edge(e);
  }
  const GraphExtent* find_part_for_node(NodeId v) const;
  const GraphExtent* find_part_for_edge(EdgeId e) const;

  NodeId n_ = 0;
  EdgeId m_ = 0;
  std::uint32_t max_degree_ = 0;
  std::vector<GraphExtent> parts_;
  /// Opaque keep-alive for the extents' backing memory (heap CSR buffers or
  /// a storage backend's mappings). Copied graphs share residency.
  std::shared_ptr<const void> residency_;
};

/// Degree of every node restricted to edges whose mask bit is set.
std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask);

/// Host-parallel variant (node-parallel over incident edges); identical
/// output for any executor.
std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask,
                                          const exec::Executor& ex);

/// Degree of every node restricted to alive nodes (an edge counts iff both
/// endpoints are alive).
std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive);

/// Host-parallel variant; identical output for any executor.
std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive,
                                         const exec::Executor& ex);

/// Number of edges with both endpoints alive.
EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive);

/// Host-parallel variant; identical output for any executor.
EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive,
                        const exec::Executor& ex);

/// Maximum alive degree.
std::uint32_t alive_max_degree(const Graph& g, const std::vector<bool>& alive);

}  // namespace dmpc::graph
