// Graph transforms: line graph, square graph, induced subgraphs.
//
// The line graph L(G) realizes the paper's reduction "maximal matching in G
// = MIS in L(G)" (§2.1, §5); the square graph G^2 is the target of the
// O(Delta^4) coloring in §5.1 (2-hop-distinct names).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dmpc::graph {

/// Line graph: node i of L(G) is edge i of G; two nodes are adjacent iff the
/// edges share an endpoint. Size is sum_v d(v)^2 / 2 - m, so only suitable
/// for bounded-degree inputs (exactly the regime §5 uses it in).
Graph line_graph(const Graph& g);

/// Square graph: same nodes, edges between every pair at distance 1 or 2.
Graph square(const Graph& g);

/// Induced subgraph on the nodes with keep[v] == true. Node ids are
/// remapped to 0..k-1 in increasing original order; `original` returns the
/// reverse mapping.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> original;  // new id -> old id
};
InducedSubgraph induced(const Graph& g, const std::vector<bool>& keep);

/// Subgraph with the same node set but only the edges whose mask bit is set.
Graph edge_subgraph(const Graph& g, const std::vector<bool>& edge_mask);

}  // namespace dmpc::graph
