// Descriptive graph statistics for tools and experiment reports.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dmpc::exec {
class Executor;
}

namespace dmpc::graph {

struct GraphStats {
  NodeId nodes = 0;
  EdgeId edges = 0;
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  double mean_degree = 0.0;
  double density = 0.0;            ///< 2m / (n(n-1)).
  NodeId isolated_nodes = 0;
  NodeId components = 0;
  /// Global clustering coefficient: 3 * triangles / open wedges.
  double clustering = 0.0;
  std::uint64_t triangles = 0;
};

GraphStats compute_stats(const Graph& g);

/// Host-parallel variant (degree scan and triangle counting run on the
/// executor); identical output for any executor, including the exact
/// floating-point fields.
GraphStats compute_stats(const Graph& g, const exec::Executor& ex);

/// Degree histogram with log2-spaced buckets: counts[i] = #nodes with
/// degree in [2^i, 2^{i+1}) (counts[0] also includes degree 0... degree 1).
std::vector<std::uint64_t> degree_histogram_log2(const Graph& g);

}  // namespace dmpc::graph
