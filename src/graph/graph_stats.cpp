#include "graph/graph_stats.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "support/math.hpp"

namespace dmpc::graph {

GraphStats compute_stats(const Graph& g) {
  GraphStats stats;
  stats.nodes = g.num_nodes();
  stats.edges = g.num_edges();
  if (g.num_nodes() == 0) return stats;

  stats.min_degree = UINT32_MAX;
  std::uint64_t degree_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = g.degree(v);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    degree_sum += d;
    if (d == 0) ++stats.isolated_nodes;
  }
  stats.mean_degree =
      static_cast<double>(degree_sum) / static_cast<double>(g.num_nodes());
  if (g.num_nodes() > 1) {
    stats.density = static_cast<double>(2 * g.num_edges()) /
                    (static_cast<double>(g.num_nodes()) *
                     static_cast<double>(g.num_nodes() - 1));
  }
  stats.components = connected_components(g).count;

  // Triangles: for each edge (u, v) with u < v, intersect sorted
  // neighborhoods, counting only w > v to count each triangle once.
  std::uint64_t wedges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  for (const Edge& e : g.edges()) {
    auto a = g.neighbors(e.u);
    auto b = g.neighbors(e.v);
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
      if (*ia < *ib) {
        ++ia;
      } else if (*ib < *ia) {
        ++ib;
      } else {
        if (*ia > e.v) ++stats.triangles;
        ++ia;
        ++ib;
      }
    }
  }
  stats.clustering =
      wedges == 0 ? 0.0
                  : 3.0 * static_cast<double>(stats.triangles) /
                        static_cast<double>(wedges);
  return stats;
}

std::vector<std::uint64_t> degree_histogram_log2(const Graph& g) {
  std::vector<std::uint64_t> counts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = g.degree(v);
    const std::size_t bucket =
        d <= 1 ? 0 : static_cast<std::size_t>(floor_log2(d));
    if (bucket >= counts.size()) counts.resize(bucket + 1, 0);
    ++counts[bucket];
  }
  return counts;
}

}  // namespace dmpc::graph
