#include "graph/graph_stats.hpp"

#include <algorithm>

#include "exec/parallel.hpp"
#include "graph/algorithms.hpp"
#include "support/math.hpp"

namespace dmpc::graph {

namespace {

/// Exact per-node aggregates folded with map_reduce; every field combines
/// associatively over integers, so any chunking gives the same totals.
struct DegreeAggregate {
  std::uint32_t min = UINT32_MAX;
  std::uint32_t max = 0;
  std::uint64_t sum = 0;
  std::uint64_t isolated = 0;
  std::uint64_t wedges = 0;
};

DegreeAggregate combine(DegreeAggregate a, const DegreeAggregate& b) {
  a.min = std::min(a.min, b.min);
  a.max = std::max(a.max, b.max);
  a.sum += b.sum;
  a.isolated += b.isolated;
  a.wedges += b.wedges;
  return a;
}

}  // namespace

GraphStats compute_stats(const Graph& g) {
  return compute_stats(g, exec::Executor::serial());
}

GraphStats compute_stats(const Graph& g, const exec::Executor& ex) {
  GraphStats stats;
  stats.nodes = g.num_nodes();
  stats.edges = g.num_edges();
  if (g.num_nodes() == 0) return stats;

  const DegreeAggregate agg = ex.map_reduce(
      0, g.num_nodes(), DegreeAggregate{},
      [&](std::uint64_t v) {
        DegreeAggregate a;
        const std::uint64_t d = g.degree(static_cast<NodeId>(v));
        a.min = a.max = static_cast<std::uint32_t>(d);
        a.sum = d;
        a.isolated = d == 0 ? 1 : 0;
        a.wedges = d * (d - 1) / 2;
        return a;
      },
      [](DegreeAggregate a, const DegreeAggregate& b) {
        return combine(std::move(a), b);
      },
      1024);
  stats.min_degree = agg.min;
  stats.max_degree = agg.max;
  stats.isolated_nodes = static_cast<NodeId>(agg.isolated);
  stats.mean_degree =
      static_cast<double>(agg.sum) / static_cast<double>(g.num_nodes());
  if (g.num_nodes() > 1) {
    stats.density = static_cast<double>(2 * g.num_edges()) /
                    (static_cast<double>(g.num_nodes()) *
                     static_cast<double>(g.num_nodes() - 1));
  }
  stats.components = connected_components(g).count;

  // Triangles: for each edge (u, v) with u < v, intersect sorted
  // neighborhoods, counting only w > v to count each triangle once. Each
  // edge's count is independent; the sum is exact.
  stats.triangles = ex.map_reduce(
      0, g.num_edges(), std::uint64_t{0},
      [&](std::uint64_t eid) {
        const Edge& e = g.edge(eid);
        auto a = g.neighbors(e.u);
        auto b = g.neighbors(e.v);
        auto ia = a.begin();
        auto ib = b.begin();
        std::uint64_t triangles = 0;
        while (ia != a.end() && ib != b.end()) {
          if (*ia < *ib) {
            ++ia;
          } else if (*ib < *ia) {
            ++ib;
          } else {
            if (*ia > e.v) ++triangles;
            ++ia;
            ++ib;
          }
        }
        return triangles;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, 512);
  stats.clustering =
      agg.wedges == 0 ? 0.0
                      : 3.0 * static_cast<double>(stats.triangles) /
                            static_cast<double>(agg.wedges);
  return stats;
}

std::vector<std::uint64_t> degree_histogram_log2(const Graph& g) {
  std::vector<std::uint64_t> counts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = g.degree(v);
    const std::size_t bucket =
        d <= 1 ? 0 : static_cast<std::size_t>(floor_log2(d));
    if (bucket >= counts.size()) counts.resize(bucket + 1, 0);
    ++counts[bucket];
  }
  return counts;
}

}  // namespace dmpc::graph
