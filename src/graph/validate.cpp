#include "graph/validate.hpp"

#include "support/check.hpp"

namespace dmpc::graph {

bool is_independent_set(const Graph& g, const std::vector<bool>& in_set) {
  DMPC_CHECK(in_set.size() == g.num_nodes());
  for (const Edge& e : g.edges()) {
    if (in_set[e.u] && in_set[e.v]) return false;
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<bool>& in_set) {
  if (!is_independent_set(g, in_set)) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_set[v]) continue;
    bool dominated = false;
    for (NodeId u : g.neighbors(v)) {
      if (in_set[u]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_matching(const Graph& g, const std::vector<EdgeId>& matching) {
  std::vector<bool> used(g.num_nodes(), false);
  for (EdgeId e : matching) {
    if (e >= g.num_edges()) return false;
    const Edge& ed = g.edge(e);
    if (used[ed.u] || used[ed.v]) return false;
    used[ed.u] = used[ed.v] = true;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<EdgeId>& matching) {
  if (!is_matching(g, matching)) return false;
  const auto covered = matched_nodes(g, matching);
  for (const Edge& e : g.edges()) {
    if (!covered[e.u] && !covered[e.v]) return false;
  }
  return true;
}

bool is_proper_coloring(const Graph& g,
                        const std::vector<std::uint32_t>& color) {
  DMPC_CHECK(color.size() == g.num_nodes());
  for (const Edge& e : g.edges()) {
    if (color[e.u] == color[e.v]) return false;
  }
  return true;
}

bool is_distance2_coloring(const Graph& g,
                           const std::vector<std::uint32_t>& color) {
  if (!is_proper_coloring(g, color)) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (color[nb[i]] == color[nb[j]]) return false;
      }
    }
  }
  return true;
}

std::vector<bool> matched_nodes(const Graph& g,
                                const std::vector<EdgeId>& matching) {
  std::vector<bool> covered(g.num_nodes(), false);
  for (EdgeId e : matching) {
    covered[g.edge(e).u] = true;
    covered[g.edge(e).v] = true;
  }
  return covered;
}

}  // namespace dmpc::graph
