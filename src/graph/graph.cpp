#include "graph/graph.hpp"

#include <algorithm>

#include "exec/parallel.hpp"
#include "support/check.hpp"

namespace dmpc::graph {

namespace {

/// Heap residency for graphs built by from_edges: the four CSR arrays,
/// referenced by a single extent.
struct HeapCsr {
  std::vector<std::uint64_t> offsets;  // n+1
  std::vector<NodeId> adjacency;       // 2m
  std::vector<EdgeId> incident;        // 2m
  std::vector<Edge> edges;             // m, canonical order
};

}  // namespace

bool operator==(const EdgeRange& a, const EdgeRange& b) {
  if (a.m_ != b.m_) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

bool operator==(const EdgeRange& a, const std::vector<Edge>& b) {
  if (a.m_ != b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

Graph Graph::from_edges(NodeId n, std::vector<Edge> edges) {
  return from_edges(n, std::move(edges), exec::Executor::serial());
}

Graph Graph::from_edges(NodeId n, std::vector<Edge> edges,
                        const exec::Executor& ex) {
  // Validation and canonicalization touch each edge independently; the
  // lowest-index failure is rethrown, so error behavior matches the serial
  // scan. parallel_sort's output permutation depends only on the data (here
  // a total order, so it equals std::sort's).
  ex.for_each(
      0, edges.size(),
      [&](std::uint64_t i) {
        Edge& e = edges[i];
        DMPC_CHECK_MSG(e.u != e.v, "self-loops are not supported");
        DMPC_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
        if (e.u > e.v) std::swap(e.u, e.v);
      },
      4096);
  exec::parallel_sort(ex, edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  auto csr = std::make_shared<HeapCsr>();
  csr->edges = std::move(edges);
  csr->offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : csr->edges) {
    ++csr->offsets[e.u + 1];
    ++csr->offsets[e.v + 1];
  }
  for (NodeId v = 0; v < n; ++v) csr->offsets[v + 1] += csr->offsets[v];

  const std::size_t deg_sum = csr->offsets[n];
  csr->adjacency.resize(deg_sum);
  csr->incident.resize(deg_sum);
  std::vector<std::uint64_t> cursor(csr->offsets.begin(),
                                    csr->offsets.end() - 1);
  for (EdgeId id = 0; id < csr->edges.size(); ++id) {
    const Edge& e = csr->edges[id];
    csr->adjacency[cursor[e.u]] = e.v;
    csr->incident[cursor[e.u]++] = id;
    csr->adjacency[cursor[e.v]] = e.u;
    csr->incident[cursor[e.v]++] = id;
  }

  GraphExtent part;
  part.node_begin = 0;
  part.node_end = n;
  part.edge_begin = 0;
  part.edge_end = static_cast<EdgeId>(csr->edges.size());
  part.slot_begin = 0;
  part.slot_end = deg_sum;
  part.offsets = csr->offsets.data();
  part.adjacency = csr->adjacency.data();
  part.incident = csr->incident.data();
  part.edges = csr->edges.data();

  Graph g = from_extents(n, part.edge_end, 0, {part}, std::move(csr));
  // Canonical edge order already sorts each adjacency row ascending:
  // edges are sorted by (u, v), so row u receives v's in increasing order,
  // and row v receives u's in increasing order of u. Verify cheaply once
  // (node-parallel; exact max reduction).
  g.max_degree_ = ex.map_reduce(
      0, n, std::uint32_t{0},
      [&](std::uint64_t v) {
        auto nb = g.neighbors(static_cast<NodeId>(v));
        DMPC_CHECK(std::is_sorted(nb.begin(), nb.end()));
        return static_cast<std::uint32_t>(nb.size());
      },
      [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); }, 256);
  return g;
}

Graph Graph::from_extents(NodeId n, EdgeId m, std::uint32_t max_degree,
                          std::vector<GraphExtent> parts,
                          std::shared_ptr<const void> residency) {
  // Structural sanity: extents tile the node/edge/slot ranges contiguously.
  NodeId node_cursor = 0;
  EdgeId edge_cursor = 0;
  std::uint64_t slot_cursor = 0;
  for (const GraphExtent& p : parts) {
    DMPC_CHECK_MSG(p.node_begin == node_cursor, "extent node range gap");
    DMPC_CHECK_MSG(p.node_end >= p.node_begin, "extent node range inverted");
    DMPC_CHECK_MSG(p.edge_begin == edge_cursor, "extent edge range gap");
    DMPC_CHECK_MSG(p.edge_end >= p.edge_begin, "extent edge range inverted");
    DMPC_CHECK_MSG(p.slot_begin == slot_cursor, "extent slot range gap");
    DMPC_CHECK_MSG(p.slot_end >= p.slot_begin, "extent slot range inverted");
    if (p.node_end > p.node_begin) {
      DMPC_CHECK_MSG(p.offsets != nullptr, "extent missing offsets");
      DMPC_CHECK_MSG(p.offsets[0] == p.slot_begin, "extent offsets unanchored");
      DMPC_CHECK_MSG(p.offsets[p.node_end - p.node_begin] == p.slot_end,
                     "extent offsets do not span slots");
    }
    node_cursor = p.node_end;
    edge_cursor = p.edge_end;
    slot_cursor = p.slot_end;
  }
  DMPC_CHECK_MSG(node_cursor == n, "extents do not cover all nodes");
  DMPC_CHECK_MSG(edge_cursor == m, "extents do not cover all edges");
  DMPC_CHECK_MSG(slot_cursor == 2 * m, "extents do not cover all slots");

  Graph g;
  g.n_ = n;
  g.m_ = m;
  g.max_degree_ = max_degree;
  g.parts_ = std::move(parts);
  g.residency_ = std::move(residency);
  return g;
}

const GraphExtent* Graph::find_part_for_node(NodeId v) const {
  // First extent with node_end > v.
  auto it = std::partition_point(
      parts_.begin(), parts_.end(),
      [v](const GraphExtent& p) { return p.node_end <= v; });
  DMPC_CHECK(it != parts_.end());
  return &*it;
}

const GraphExtent* Graph::find_part_for_edge(EdgeId e) const {
  auto it = std::partition_point(
      parts_.begin(), parts_.end(),
      [e](const GraphExtent& p) { return p.edge_end <= e; });
  DMPC_CHECK(it != parts_.end());
  return &*it;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return find_edge(u, v) != kNoEdge;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_ || u == v) return kNoEdge;
  auto nb = neighbors(u);
  auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return kNoEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nb.begin())];
}

NodeId Graph::other_endpoint(EdgeId e, NodeId v) const {
  const Edge& ed = edge(e);
  DMPC_CHECK(ed.u == v || ed.v == v);
  return ed.u == v ? ed.v : ed.u;
}

std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask) {
  DMPC_CHECK(edge_mask.size() == g.num_edges());
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  EdgeId e = 0;
  for (const Edge& ed : g.edges()) {
    if (edge_mask[e++]) {
      ++deg[ed.u];
      ++deg[ed.v];
    }
  }
  return deg;
}

std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask,
                                          const exec::Executor& ex) {
  DMPC_CHECK(edge_mask.size() == g.num_edges());
  // Node-parallel reformulation of the edge loop: deg[v] = number of v's
  // incident edges with the mask bit set — the same value the per-edge
  // increments produce, computed with disjoint writes.
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  ex.for_each(
      0, g.num_nodes(),
      [&](std::uint64_t v) {
        std::uint32_t d = 0;
        for (EdgeId e : g.incident_edges(static_cast<NodeId>(v))) {
          if (edge_mask[e]) ++d;
        }
        deg[v] = d;
      },
      256);
  return deg;
}

std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  for (const Edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) {
      ++deg[e.u];
      ++deg[e.v];
    }
  }
  return deg;
}

std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive,
                                         const exec::Executor& ex) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  // Node-parallel reformulation: a dead node gets 0 (no edge with both
  // endpoints alive touches it); an alive node counts its alive neighbors.
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  ex.for_each(
      0, g.num_nodes(),
      [&](std::uint64_t v) {
        if (!alive[v]) return;
        std::uint32_t d = 0;
        for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
          if (alive[u]) ++d;
        }
        deg[v] = d;
      },
      256);
  return deg;
}

EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  EdgeId count = 0;
  for (const Edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) ++count;
  }
  return count;
}

EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive,
                        const exec::Executor& ex) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  return ex.map_reduce(
      0, g.num_edges(), EdgeId{0},
      [&](std::uint64_t e) {
        const Edge& ed = g.edge(e);
        return static_cast<EdgeId>(alive[ed.u] && alive[ed.v] ? 1 : 0);
      },
      [](EdgeId a, EdgeId b) { return a + b; }, 4096);
}

std::uint32_t alive_max_degree(const Graph& g, const std::vector<bool>& alive) {
  auto deg = alive_degrees(g, alive);
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) best = std::max(best, deg[v]);
  }
  return best;
}

}  // namespace dmpc::graph
