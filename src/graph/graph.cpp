#include "graph/graph.hpp"

#include <algorithm>

#include "exec/parallel.hpp"
#include "support/check.hpp"

namespace dmpc::graph {

Graph Graph::from_edges(NodeId n, std::vector<Edge> edges) {
  return from_edges(n, std::move(edges), exec::Executor::serial());
}

Graph Graph::from_edges(NodeId n, std::vector<Edge> edges,
                        const exec::Executor& ex) {
  // Validation and canonicalization touch each edge independently; the
  // lowest-index failure is rethrown, so error behavior matches the serial
  // scan. parallel_sort's output permutation depends only on the data (here
  // a total order, so it equals std::sort's).
  ex.for_each(
      0, edges.size(),
      [&](std::uint64_t i) {
        Edge& e = edges[i];
        DMPC_CHECK_MSG(e.u != e.v, "self-loops are not supported");
        DMPC_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
        if (e.u > e.v) std::swap(e.u, e.v);
      },
      4096);
  exec::parallel_sort(ex, edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.n_ = n;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];

  const std::size_t deg_sum = g.offsets_[n];
  g.adjacency_.resize(deg_sum);
  g.incident_.resize(deg_sum);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adjacency_[cursor[e.u]] = e.v;
    g.incident_[cursor[e.u]++] = id;
    g.adjacency_[cursor[e.v]] = e.u;
    g.incident_[cursor[e.v]++] = id;
  }
  // Canonical edge order already sorts each adjacency row ascending:
  // edges are sorted by (u, v), so row u receives v's in increasing order,
  // and row v receives u's in increasing order of u. Verify cheaply once
  // (node-parallel; exact max reduction).
  g.max_degree_ = ex.map_reduce(
      0, n, std::uint32_t{0},
      [&](std::uint64_t v) {
        auto nb = g.neighbors(static_cast<NodeId>(v));
        DMPC_CHECK(std::is_sorted(nb.begin(), nb.end()));
        return static_cast<std::uint32_t>(nb.size());
      },
      [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); }, 256);
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return find_edge(u, v) != kNoEdge;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_ || u == v) return kNoEdge;
  auto nb = neighbors(u);
  auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return kNoEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nb.begin())];
}

NodeId Graph::other_endpoint(EdgeId e, NodeId v) const {
  const Edge& ed = edges_[e];
  DMPC_CHECK(ed.u == v || ed.v == v);
  return ed.u == v ? ed.v : ed.u;
}

std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask) {
  DMPC_CHECK(edge_mask.size() == g.num_edges());
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_mask[e]) continue;
    ++deg[g.edge(e).u];
    ++deg[g.edge(e).v];
  }
  return deg;
}

std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask,
                                          const exec::Executor& ex) {
  DMPC_CHECK(edge_mask.size() == g.num_edges());
  // Node-parallel reformulation of the edge loop: deg[v] = number of v's
  // incident edges with the mask bit set — the same value the per-edge
  // increments produce, computed with disjoint writes.
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  ex.for_each(
      0, g.num_nodes(),
      [&](std::uint64_t v) {
        std::uint32_t d = 0;
        for (EdgeId e : g.incident_edges(static_cast<NodeId>(v))) {
          if (edge_mask[e]) ++d;
        }
        deg[v] = d;
      },
      256);
  return deg;
}

std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  for (const Edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) {
      ++deg[e.u];
      ++deg[e.v];
    }
  }
  return deg;
}

std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive,
                                         const exec::Executor& ex) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  // Node-parallel reformulation: a dead node gets 0 (no edge with both
  // endpoints alive touches it); an alive node counts its alive neighbors.
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  ex.for_each(
      0, g.num_nodes(),
      [&](std::uint64_t v) {
        if (!alive[v]) return;
        std::uint32_t d = 0;
        for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
          if (alive[u]) ++d;
        }
        deg[v] = d;
      },
      256);
  return deg;
}

EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  EdgeId count = 0;
  for (const Edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) ++count;
  }
  return count;
}

EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive,
                        const exec::Executor& ex) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  return ex.map_reduce(
      0, g.num_edges(), EdgeId{0},
      [&](std::uint64_t e) {
        const Edge& ed = g.edge(e);
        return static_cast<EdgeId>(alive[ed.u] && alive[ed.v] ? 1 : 0);
      },
      [](EdgeId a, EdgeId b) { return a + b; }, 4096);
}

std::uint32_t alive_max_degree(const Graph& g, const std::vector<bool>& alive) {
  auto deg = alive_degrees(g, alive);
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) best = std::max(best, deg[v]);
  }
  return best;
}

}  // namespace dmpc::graph
