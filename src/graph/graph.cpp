#include "graph/graph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dmpc::graph {

Graph Graph::from_edges(NodeId n, std::vector<Edge> edges) {
  for (auto& e : edges) {
    DMPC_CHECK_MSG(e.u != e.v, "self-loops are not supported");
    DMPC_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.n_ = n;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];

  const std::size_t deg_sum = g.offsets_[n];
  g.adjacency_.resize(deg_sum);
  g.incident_.resize(deg_sum);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adjacency_[cursor[e.u]] = e.v;
    g.incident_[cursor[e.u]++] = id;
    g.adjacency_[cursor[e.v]] = e.u;
    g.incident_[cursor[e.v]++] = id;
  }
  // Canonical edge order already sorts each adjacency row ascending:
  // edges are sorted by (u, v), so row u receives v's in increasing order,
  // and row v receives u's in increasing order of u. Verify cheaply once.
  for (NodeId v = 0; v < n; ++v) {
    auto nb = g.neighbors(v);
    DMPC_CHECK(std::is_sorted(nb.begin(), nb.end()));
    g.max_degree_ = std::max(g.max_degree_, static_cast<std::uint32_t>(nb.size()));
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return find_edge(u, v) != kNoEdge;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_ || u == v) return kNoEdge;
  auto nb = neighbors(u);
  auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return kNoEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nb.begin())];
}

NodeId Graph::other_endpoint(EdgeId e, NodeId v) const {
  const Edge& ed = edges_[e];
  DMPC_CHECK(ed.u == v || ed.v == v);
  return ed.u == v ? ed.v : ed.u;
}

std::vector<std::uint32_t> masked_degrees(const Graph& g,
                                          const std::vector<bool>& edge_mask) {
  DMPC_CHECK(edge_mask.size() == g.num_edges());
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_mask[e]) continue;
    ++deg[g.edge(e).u];
    ++deg[g.edge(e).v];
  }
  return deg;
}

std::vector<std::uint32_t> alive_degrees(const Graph& g,
                                         const std::vector<bool>& alive) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  std::vector<std::uint32_t> deg(g.num_nodes(), 0);
  for (const Edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) {
      ++deg[e.u];
      ++deg[e.v];
    }
  }
  return deg;
}

EdgeId alive_edge_count(const Graph& g, const std::vector<bool>& alive) {
  DMPC_CHECK(alive.size() == g.num_nodes());
  EdgeId count = 0;
  for (const Edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) ++count;
  }
  return count;
}

std::uint32_t alive_max_degree(const Graph& g, const std::vector<bool>& alive) {
  auto deg = alive_degrees(g, alive);
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) best = std::max(best, deg[v]);
  }
  return best;
}

}  // namespace dmpc::graph
