#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "graph/builder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmpc::graph {

Graph gnm(NodeId n, EdgeId m, std::uint64_t seed) {
  DMPC_CHECK(n >= 2);
  const EdgeId max_edges = static_cast<EdgeId>(n) * (n - 1) / 2;
  DMPC_CHECK_MSG(m <= max_edges, "too many edges requested");
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> chosen;
  // For sparse requests, rejection-sample; for dense (> half of all pairs),
  // sample the complement instead so the loop stays linear-ish.
  const bool dense = m > max_edges / 2;
  const EdgeId target = dense ? max_edges - m : m;
  while (chosen.size() < target) {
    auto u = static_cast<NodeId>(rng.next_below(n));
    auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.insert({u, v});
  }
  GraphBuilder b(n);
  if (!dense) {
    for (auto [u, v] : chosen) b.add_edge(u, v);
  } else {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (!chosen.count({u, v})) b.add_edge(u, v);
      }
    }
  }
  return std::move(b).build();
}

Graph gnp(NodeId n, double p, std::uint64_t seed) {
  DMPC_CHECK(n >= 1);
  DMPC_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p <= 0.0) return std::move(b).build();
  Rng rng(seed);
  if (p >= 1.0) return complete(n);
  // Geometric skipping over the lexicographic pair order.
  const double log_q = std::log1p(-p);
  std::uint64_t idx = 0;  // index into the n*(n-1)/2 pair sequence
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  while (true) {
    const double r = rng.next_double();
    const auto skip =
        static_cast<std::uint64_t>(std::floor(std::log1p(-r) / log_q));
    idx += skip;
    if (idx >= total) break;
    // Decode pair index -> (u, v) with u < v.
    // Row u holds (n-1-u) pairs; find u by walking (amortized fine since we
    // only decode selected edges).
    std::uint64_t rem = idx;
    NodeId u = 0;
    while (rem >= static_cast<std::uint64_t>(n - 1 - u)) {
      rem -= n - 1 - u;
      ++u;
    }
    const NodeId v = static_cast<NodeId>(u + 1 + rem);
    b.add_edge(u, v);
    ++idx;
  }
  return std::move(b).build();
}

Graph power_law(NodeId n, EdgeId m_target, double beta, std::uint64_t seed) {
  DMPC_CHECK(n >= 2);
  DMPC_CHECK_MSG(beta > 2.0, "Chung-Lu requires beta > 2");
  // Weights w_v = c * (v+1)^{-1/(beta-1)}; edge {u,v} kept with probability
  // min(1, w_u w_v / W). Scale c to hit ~m_target expected edges.
  std::vector<double> w(n);
  const double exponent = -1.0 / (beta - 1.0);
  double total = 0;
  for (NodeId v = 0; v < n; ++v) {
    w[v] = std::pow(static_cast<double>(v + 1), exponent);
    total += w[v];
  }
  // E[m] = sum_{u<v} w_u w_v / W ~ W / 2 with W = sum w. Scaling every
  // weight by c scales both numerator (c^2) and denominator (c), so E[m]
  // scales by c: pick c = m_target / (W/2).
  const double base_m = total / 2.0;
  const double c = static_cast<double>(m_target) / base_m;
  for (auto& x : w) x *= c;
  total *= c;

  Rng rng(seed);
  GraphBuilder b(n);
  // Efficient Chung-Lu: for each u, sample neighbors v > u with probability
  // w_u w_v / W via geometric skipping against the max weight in the tail,
  // then accept/reject. Tail weights are decreasing, so max = w[u+1].
  for (NodeId u = 0; u + 1 < n; ++u) {
    const double p_max = std::min(1.0, w[u] * w[u + 1] / total);
    if (p_max <= 0) continue;
    double v_real = u;
    const double log_q = std::log1p(-p_max);
    while (true) {
      if (p_max < 1.0) {
        const double r = rng.next_double();
        v_real += 1.0 + std::floor(std::log1p(-r) / log_q);
      } else {
        v_real += 1.0;
      }
      if (v_real >= n) break;
      const auto v = static_cast<NodeId>(v_real);
      const double p_actual = std::min(1.0, w[u] * w[v] / total);
      if (rng.next_double() < p_actual / p_max) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph random_regular(NodeId n, std::uint32_t d, std::uint64_t seed) {
  DMPC_CHECK(n >= 2);
  DMPC_CHECK(d >= 1 && d < n);
  Rng rng(seed);
  GraphBuilder b(n);
  // Pairing model: d copies of each node, random perfect matching of the
  // copies; self-pairs and duplicate pairs are dropped.
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  if (stubs.size() % 2 == 1) stubs.pop_back();
  for (std::size_t i = stubs.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(stubs[i - 1], stubs[j]);
  }
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    b.try_add_edge(stubs[i], stubs[i + 1]);
  }
  return std::move(b).build();
}

Graph complete(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph complete_bipartite(NodeId left, NodeId right) {
  GraphBuilder b(left + right);
  for (NodeId u = 0; u < left; ++u) {
    for (NodeId v = 0; v < right; ++v) b.add_edge(u, left + v);
  }
  return std::move(b).build();
}

Graph random_bipartite(NodeId left, NodeId right, EdgeId m,
                       std::uint64_t seed) {
  DMPC_CHECK(left >= 1 && right >= 1);
  const EdgeId max_edges = static_cast<EdgeId>(left) * right;
  DMPC_CHECK(m <= max_edges);
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> chosen;
  while (chosen.size() < m) {
    auto u = static_cast<NodeId>(rng.next_below(left));
    auto v = static_cast<NodeId>(left + rng.next_below(right));
    chosen.insert({u, v});
  }
  GraphBuilder b(left + right);
  for (auto [u, v] : chosen) b.add_edge(u, v);
  return std::move(b).build();
}

Graph cycle(NodeId n) {
  DMPC_CHECK(n >= 3);
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return std::move(b).build();
}

Graph path(NodeId n) {
  DMPC_CHECK(n >= 2);
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Graph grid(NodeId rows, NodeId cols) {
  DMPC_CHECK(rows >= 1 && cols >= 1);
  DMPC_CHECK(static_cast<std::uint64_t>(rows) * cols < kNoNode);
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  DMPC_CHECK(n >= 1);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(static_cast<NodeId>(rng.next_below(v)), v);
  }
  return std::move(b).build();
}

Graph star(NodeId leaves) {
  DMPC_CHECK(leaves >= 1);
  GraphBuilder b(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return std::move(b).build();
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  GraphBuilder out(a.num_nodes() + b.num_nodes());
  for (const Edge& e : a.edges()) out.add_edge(e.u, e.v);
  for (const Edge& e : b.edges()) {
    out.add_edge(a.num_nodes() + e.u, a.num_nodes() + e.v);
  }
  return std::move(out).build();
}

Graph lopsided(NodeId core, std::uint32_t core_degree, NodeId background,
               EdgeId background_edges, std::uint64_t seed) {
  DMPC_CHECK(core >= 1);
  const NodeId leaf_count = core * core_degree;
  const NodeId n = core + leaf_count + background;
  GraphBuilder b(n);
  // Core node i owns leaves [core + i*core_degree, core + (i+1)*core_degree).
  for (NodeId i = 0; i < core; ++i) {
    for (std::uint32_t j = 0; j < core_degree; ++j) {
      b.add_edge(i, core + i * core_degree + j);
    }
  }
  if (background >= 2 && background_edges > 0) {
    Rng rng(seed);
    const NodeId bg_base = core + leaf_count;
    std::set<std::pair<NodeId, NodeId>> chosen;
    const EdgeId max_bg = static_cast<EdgeId>(background) * (background - 1) / 2;
    const EdgeId want = std::min(background_edges, max_bg);
    while (chosen.size() < want) {
      auto u = static_cast<NodeId>(bg_base + rng.next_below(background));
      auto v = static_cast<NodeId>(bg_base + rng.next_below(background));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      chosen.insert({u, v});
    }
    for (auto [u, v] : chosen) b.add_edge(u, v);
  }
  return std::move(b).build();
}

}  // namespace dmpc::graph
