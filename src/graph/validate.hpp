// Solution validators — the ground truth every solver is tested against.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dmpc::graph {

/// No two set members adjacent.
bool is_independent_set(const Graph& g, const std::vector<bool>& in_set);

/// Independent and maximal: every non-member has a member neighbor.
bool is_maximal_independent_set(const Graph& g, const std::vector<bool>& in_set);

/// No two matching edges share an endpoint.
bool is_matching(const Graph& g, const std::vector<EdgeId>& matching);

/// Matching and maximal: every edge has a matched endpoint.
bool is_maximal_matching(const Graph& g, const std::vector<EdgeId>& matching);

/// Proper coloring of G (adjacent nodes differ).
bool is_proper_coloring(const Graph& g, const std::vector<std::uint32_t>& color);

/// Distance-2 proper coloring (nodes at distance <= 2 differ) — the §5.1
/// requirement for 2-hop-distinct names.
bool is_distance2_coloring(const Graph& g,
                           const std::vector<std::uint32_t>& color);

/// Nodes covered by a matching (either endpoint of a matched edge).
std::vector<bool> matched_nodes(const Graph& g,
                                const std::vector<EdgeId>& matching);

}  // namespace dmpc::graph
