#include "graph/transforms.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "support/check.hpp"

namespace dmpc::graph {

Graph line_graph(const Graph& g) {
  const auto m = static_cast<NodeId>(g.num_edges());
  GraphBuilder b(std::max<NodeId>(m, 1));
  // For every node, connect all pairs of incident edges.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto inc = g.incident_edges(v);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      for (std::size_t j = i + 1; j < inc.size(); ++j) {
        b.add_edge(static_cast<NodeId>(inc[i]), static_cast<NodeId>(inc[j]));
      }
    }
  }
  return std::move(b).build();
}

Graph square(const Graph& g) {
  GraphBuilder b(std::max<NodeId>(g.num_nodes(), 1));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nb = g.neighbors(v);
    for (NodeId u : nb) {
      if (v < u) b.add_edge(v, u);
    }
    // Distance-2 pairs through v.
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        b.add_edge(nb[i], nb[j]);
      }
    }
  }
  return std::move(b).build();
}

InducedSubgraph induced(const Graph& g, const std::vector<bool>& keep) {
  DMPC_CHECK(keep.size() == g.num_nodes());
  InducedSubgraph out;
  std::vector<NodeId> remap(g.num_nodes(), kNoNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (keep[v]) {
      remap[v] = static_cast<NodeId>(out.original.size());
      out.original.push_back(v);
    }
  }
  GraphBuilder b(std::max<NodeId>(static_cast<NodeId>(out.original.size()), 1));
  for (const Edge& e : g.edges()) {
    if (keep[e.u] && keep[e.v]) b.add_edge(remap[e.u], remap[e.v]);
  }
  out.graph = std::move(b).build();
  return out;
}

Graph edge_subgraph(const Graph& g, const std::vector<bool>& edge_mask) {
  DMPC_CHECK(edge_mask.size() == g.num_edges());
  GraphBuilder b(std::max<NodeId>(g.num_nodes(), 1));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (edge_mask[e]) b.add_edge(g.edge(e).u, g.edge(e).v);
  }
  return std::move(b).build();
}

}  // namespace dmpc::graph
