// General-purpose graph algorithms used by tools, examples, and tests:
// connectivity, BFS distances, and maximum bipartite matching
// (Hopcroft–Karp) — the latter is the quality reference for the maximal
// matching solvers (any maximal matching is a 1/2-approximation of
// maximum, a property the tests verify).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dmpc::graph {

/// Connected components: per-node component id in [0, count).
struct Components {
  std::vector<NodeId> component;
  NodeId count = 0;
};
Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// BFS distances from `source`; unreachable nodes get UINT32_MAX.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Bipartition check: 2-coloring by BFS. Returns true and fills `side`
/// (0/1) if bipartite.
bool bipartition(const Graph& g, std::vector<std::uint8_t>* side);

/// Maximum matching of a bipartite graph via Hopcroft–Karp. Throws if the
/// graph is not bipartite. Returns the matched partner of each node
/// (kNoNode if unmatched).
struct MaximumMatching {
  std::vector<NodeId> partner;
  std::uint64_t size = 0;
};
MaximumMatching hopcroft_karp(const Graph& g);

}  // namespace dmpc::graph
