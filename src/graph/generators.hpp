// Workload generators.
//
// The paper has no datasets; its claims are quantified over all graphs, so
// the experiment suite sweeps structured and random families that stress the
// different regimes: dense random (forces the i >= 5 sparsification path),
// power-law (heterogeneous degree classes C_i), bounded-degree (the §5
// low-degree path), bipartite/grid/tree (structured adversaries).
//
// All generators are deterministic functions of their explicit seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace dmpc::graph {

/// Erdos–Renyi G(n, m): m distinct uniform edges.
Graph gnm(NodeId n, EdgeId m, std::uint64_t seed);

/// G(n, p) via geometric skipping.
Graph gnp(NodeId n, double p, std::uint64_t seed);

/// Chung–Lu power-law: expected degree of node v proportional to
/// (v+1)^{-1/(beta-1)}, scaled so the expected edge count is ~m_target.
Graph power_law(NodeId n, EdgeId m_target, double beta, std::uint64_t seed);

/// Random graph with (near-)uniform degree d: the permutation-matching
/// pairing model, with collisions/self-loops dropped (degree <= d, and
/// >= d - o(d) in expectation).
Graph random_regular(NodeId n, std::uint32_t d, std::uint64_t seed);

Graph complete(NodeId n);
Graph complete_bipartite(NodeId left, NodeId right);

/// Random bipartite with m distinct edges between [0,left) and [left,left+right).
Graph random_bipartite(NodeId left, NodeId right, EdgeId m, std::uint64_t seed);

Graph cycle(NodeId n);
Graph path(NodeId n);

/// rows x cols 2-D grid.
Graph grid(NodeId rows, NodeId cols);

/// Uniform random labelled tree (random attachment to an earlier node).
Graph random_tree(NodeId n, std::uint64_t seed);

Graph star(NodeId leaves);

/// Disjoint union, with the second graph's ids shifted.
Graph disjoint_union(const Graph& a, const Graph& b);

/// "Hard" instance for sparsification: a core of `core` high-degree nodes,
/// each connected to a distinct block of `core_degree` low-degree leaves,
/// plus a sparse random background. Produces a wide spread of degree
/// classes C_i.
Graph lopsided(NodeId core, std::uint32_t core_degree, NodeId background,
               EdgeId background_edges, std::uint64_t seed);

}  // namespace dmpc::graph
