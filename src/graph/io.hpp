// Plain-text edge-list IO ("u v" per line, '#' comments, first data line may
// be "n m" header; ids must be < n).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dmpc::graph {

Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

}  // namespace dmpc::graph
