// Plain-text edge-list IO ("u v" per line, '#' comments, first data line is
// the "n m" header; ids must be < n).
//
// The reader is a hardened untrusted-input boundary: malformed input of any
// kind — truncated lines, non-numeric or overflowing tokens, an adversarial
// header declaring 2^63 edges, out-of-range endpoints, self-loops, duplicate
// edges, oversized lines — is reported as a typed, recoverable
// dmpc::ParseError (code + line/column + offending token), never a
// DMPC_CHECK assertion and never an unbounded allocation. Hard caps on
// n / m / line length are configurable via EdgeListLimits; allocation is
// always bounded by the bytes actually read, not by what the header claims.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dmpc::graph {

/// What to do with duplicate edges (and self-loops) in the input.
enum class DuplicatePolicy : std::uint8_t {
  kReject,  ///< Typed ParseError naming the first duplicate / self-loop.
  kDedupe,  ///< Silently keep the first occurrence, drop the rest.
};

/// Hard caps on untrusted edge-list input. Inputs exceeding a cap are
/// rejected with ParseErrorCode::kLimitExceeded before any allocation sized
/// by the offending value happens.
struct EdgeListLimits {
  /// Maximum accepted node count (header n). The graph's adjacency arrays
  /// are sized by n, so the default caps a 12-byte adversarial header at a
  /// ~2 GiB allocation rather than the full NodeId range (~34 GiB); raise
  /// it explicitly for genuinely larger inputs.
  std::uint64_t max_nodes = 1ull << 28;
  /// Maximum accepted edge count (header m and actual data lines).
  std::uint64_t max_edges = 1ull << 33;
  /// Maximum accepted line length in bytes.
  std::uint64_t max_line_bytes = 1ull << 20;
  DuplicatePolicy duplicates = DuplicatePolicy::kReject;
  /// Require the declared header m to equal the number of data lines.
  bool check_edge_count = true;
};

/// The "n m" header of an edge-list input, validated against the limits.
struct EdgeListHeader {
  NodeId n = 0;
  std::uint64_t declared_m = 0;
};

/// Streaming scan of a text edge list: the same hardened parse (header and
/// line validation, caps, out-of-range and self-loop rejection, count
/// checks, typed errors) as read_edge_list, but delivering callbacks instead
/// of materializing an edge vector, so out-of-core builders (shard_build)
/// can ingest inputs far larger than RAM. `on_edge(u, v, line, column)`
/// receives each validated data line in input order (u, v already
/// range-checked, u != v unless a kDedupe self-loop was dropped before the
/// call). Duplicate-edge detection is NOT performed here — it needs
/// per-node state; callers wanting kReject semantics detect duplicates
/// downstream (read_edge_list via a hash set, shard_build at shard
/// finalization).
void scan_edge_list(
    std::istream& in, const EdgeListLimits& limits,
    const std::function<void(const EdgeListHeader&)>& on_header,
    const std::function<void(NodeId, NodeId, std::uint64_t, std::uint64_t)>&
        on_edge);

/// Read an edge list. Throws dmpc::ParseError (derives CheckFailure) on any
/// malformed input; never aborts, never allocates proportionally to an
/// adversarial header.
Graph read_edge_list(std::istream& in, const EdgeListLimits& limits = {});

/// Read from a file. Open and read failures carry errno context
/// (std::strerror) and are distinguished from parse failures by
/// ParseErrorCode::kIoError.
Graph read_edge_list_file(const std::string& path,
                          const EdgeListLimits& limits = {});

void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

}  // namespace dmpc::graph
