#include "graph/builder.hpp"

#include "support/check.hpp"

namespace dmpc::graph {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  DMPC_CHECK_MSG(u < n_ && v < n_, "endpoint out of range");
  DMPC_CHECK_MSG(u != v, "self-loop");
  edges_.push_back({u, v});
}

bool GraphBuilder::try_add_edge(NodeId u, NodeId v) {
  if (u >= n_ || v >= n_ || u == v) return false;
  edges_.push_back({u, v});
  return true;
}

Graph GraphBuilder::build() && {
  return Graph::from_edges(n_, std::move(edges_));
}

}  // namespace dmpc::graph
