// Incremental edge-list builder with deduplication.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dmpc::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n) : n_(n) {}

  NodeId num_nodes() const { return n_; }
  std::size_t pending_edges() const { return edges_.size(); }

  /// Adds {u, v}; self-loops are rejected, duplicates collapse at build().
  void add_edge(NodeId u, NodeId v);

  /// Adds the edge only if both endpoints are valid and distinct; returns
  /// whether it was added. Convenience for randomized generators.
  bool try_add_edge(NodeId u, NodeId v);

  Graph build() &&;

 private:
  NodeId n_;
  std::vector<Edge> edges_;
};

}  // namespace dmpc::graph
