#include "graph/algorithms.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include "support/check.hpp"

namespace dmpc::graph {

Components connected_components(const Graph& g) {
  Components out;
  out.component.assign(g.num_nodes(), kNoNode);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (out.component[start] != kNoNode) continue;
    const NodeId id = out.count++;
    out.component[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId u : g.neighbors(v)) {
        if (out.component[u] == kNoNode) {
          out.component[u] = id;
          stack.push_back(u);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  return g.num_nodes() <= 1 || connected_components(g).count == 1;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  DMPC_CHECK(source < g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), UINT32_MAX);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == UINT32_MAX) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

bool bipartition(const Graph& g, std::vector<std::uint8_t>* side) {
  std::vector<std::uint8_t> color(g.num_nodes(), 2);  // 2 = unassigned
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (color[start] != 2) continue;
    color[start] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId u : g.neighbors(v)) {
        if (color[u] == 2) {
          color[u] = static_cast<std::uint8_t>(1 - color[v]);
          frontier.push(u);
        } else if (color[u] == color[v]) {
          return false;
        }
      }
    }
  }
  if (side != nullptr) *side = std::move(color);
  return true;
}

MaximumMatching hopcroft_karp(const Graph& g) {
  std::vector<std::uint8_t> side;
  DMPC_CHECK_MSG(bipartition(g, &side), "hopcroft_karp requires bipartite");

  MaximumMatching result;
  result.partner.assign(g.num_nodes(), kNoNode);
  constexpr std::uint32_t kInf = UINT32_MAX;
  std::vector<std::uint32_t> dist(g.num_nodes(), kInf);

  // Left side = side 0. BFS layers from free left nodes.
  auto bfs = [&]() {
    std::queue<NodeId> frontier;
    bool found_augmenting = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (side[v] == 0 && result.partner[v] == kNoNode) {
        dist[v] = 0;
        frontier.push(v);
      } else {
        dist[v] = kInf;
      }
    }
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId u : g.neighbors(v)) {
        // u is on the right; move to its partner (or report augmenting).
        const NodeId w = result.partner[u];
        if (w == kNoNode) {
          found_augmenting = true;
        } else if (dist[w] == kInf) {
          dist[w] = dist[v] + 1;
          frontier.push(w);
        }
      }
    }
    return found_augmenting;
  };

  std::function<bool(NodeId)> dfs = [&](NodeId v) {
    for (NodeId u : g.neighbors(v)) {
      const NodeId w = result.partner[u];
      if (w == kNoNode || (dist[w] == dist[v] + 1 && dfs(w))) {
        result.partner[v] = u;
        result.partner[u] = v;
        return true;
      }
    }
    dist[v] = kInf;
    return false;
  };

  while (bfs()) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (side[v] == 0 && result.partner[v] == kNoNode && dfs(v)) {
        ++result.size;
      }
    }
  }
  return result;
}

}  // namespace dmpc::graph
