#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dmpc::graph {

Graph read_edge_list(std::istream& in) {
  std::string line;
  bool header_seen = false;
  NodeId n = 0;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t a = 0, b = 0;
    if (!(ls >> a)) continue;  // blank/comment line
    DMPC_CHECK_MSG(static_cast<bool>(ls >> b), "malformed edge list line");
    if (!header_seen) {
      header_seen = true;
      // First data line is the "n m" header.
      DMPC_CHECK_MSG(a > 0 && a < kNoNode, "bad node count in header");
      n = static_cast<NodeId>(a);
      edges.reserve(b);
      continue;
    }
    DMPC_CHECK_MSG(a < n && b < n, "edge endpoint out of declared range");
    edges.push_back({static_cast<NodeId>(a), static_cast<NodeId>(b)});
  }
  DMPC_CHECK_MSG(header_seen, "empty edge list input");
  return Graph::from_edges(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  DMPC_CHECK_MSG(in.good(), "cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  DMPC_CHECK_MSG(out.good(), "cannot open " + path);
  write_edge_list(g, out);
}

}  // namespace dmpc::graph
