#include "graph/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "support/check.hpp"
#include "support/parse_error.hpp"

namespace dmpc::graph {
namespace {

using parse::clip;
using parse::require_u64;
using parse::Token;
using parse::tokenize;

std::string errno_detail() {
  const int err = errno;
  return err != 0 ? std::strerror(err) : "unknown error";
}

}  // namespace

void scan_edge_list(
    std::istream& in, const EdgeListLimits& limits,
    const std::function<void(const EdgeListHeader&)>& on_header,
    const std::function<void(NodeId, NodeId, std::uint64_t, std::uint64_t)>&
        on_edge) {
  std::string line;
  std::uint64_t line_no = 0;
  bool header_seen = false;
  NodeId n = 0;
  std::uint64_t declared_m = 0;
  std::uint64_t data_lines = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.size() > limits.max_line_bytes) {
      throw ParseError(ParseErrorCode::kLimitExceeded,
                       "line exceeds " + std::to_string(limits.max_line_bytes) +
                           " byte limit",
                       line_no);
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<Token> toks = tokenize(line);
    if (toks.empty()) continue;  // blank/comment line
    if (toks.size() != 2) {
      throw ParseError(
          ParseErrorCode::kMalformedLine,
          "expected exactly two tokens, found " + std::to_string(toks.size()),
          line_no, toks.size() > 2 ? toks[2].column : toks[0].column,
          clip(toks.size() > 2 ? toks[2].text : toks[0].text));
    }
    const std::uint64_t a = require_u64(toks[0], line_no);
    const std::uint64_t b = require_u64(toks[1], line_no);
    if (!header_seen) {
      header_seen = true;
      // First data line is the "n m" header.
      if (a == 0 || a >= kNoNode) {
        throw ParseError(ParseErrorCode::kBadHeader,
                         "node count must be in [1, 2^32 - 2]", line_no,
                         toks[0].column, clip(toks[0].text));
      }
      if (a > limits.max_nodes) {
        throw ParseError(ParseErrorCode::kLimitExceeded,
                         "declared node count exceeds cap of " +
                             std::to_string(limits.max_nodes),
                         line_no, toks[0].column, clip(toks[0].text));
      }
      if (b > limits.max_edges) {
        throw ParseError(ParseErrorCode::kLimitExceeded,
                         "declared edge count exceeds cap of " +
                             std::to_string(limits.max_edges),
                         line_no, toks[1].column, clip(toks[1].text));
      }
      n = static_cast<NodeId>(a);
      declared_m = b;
      on_header(EdgeListHeader{n, declared_m});
      continue;
    }
    ++data_lines;
    if (data_lines > limits.max_edges) {
      throw ParseError(
          ParseErrorCode::kLimitExceeded,
          "edge count exceeds cap of " + std::to_string(limits.max_edges),
          line_no);
    }
    if (a >= n) {
      throw ParseError(ParseErrorCode::kOutOfRange,
                       "edge endpoint out of declared range [0, " +
                           std::to_string(n) + ")",
                       line_no, toks[0].column, clip(toks[0].text));
    }
    if (b >= n) {
      throw ParseError(ParseErrorCode::kOutOfRange,
                       "edge endpoint out of declared range [0, " +
                           std::to_string(n) + ")",
                       line_no, toks[1].column, clip(toks[1].text));
    }
    if (a == b) {
      if (limits.duplicates == DuplicatePolicy::kDedupe) continue;
      throw ParseError(ParseErrorCode::kSelfLoop, "self-loop edge", line_no,
                       toks[0].column, clip(toks[0].text));
    }
    on_edge(static_cast<NodeId>(a), static_cast<NodeId>(b), line_no,
            toks[0].column);
  }
  if (in.bad()) {
    throw ParseError(ParseErrorCode::kIoError,
                     "read failure: " + errno_detail(), line_no);
  }
  if (!header_seen) {
    throw ParseError(ParseErrorCode::kBadHeader, "empty edge list input");
  }
  if (limits.check_edge_count && data_lines != declared_m) {
    throw ParseError(ParseErrorCode::kCountMismatch,
                     "header declares " + std::to_string(declared_m) +
                         " edges but input contains " +
                         std::to_string(data_lines),
                     line_no);
  }
}

Graph read_edge_list(std::istream& in, const EdgeListLimits& limits) {
  NodeId n = 0;
  std::vector<Edge> edges;
  std::unordered_set<std::uint64_t> seen;
  scan_edge_list(
      in, limits,
      [&](const EdgeListHeader& header) {
        n = header.n;
        // Reserve only a bounded prefix: allocation must track bytes
        // actually read, never an adversarial header.
        edges.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(header.declared_m, 1ull << 20)));
      },
      [&](NodeId a, NodeId b, std::uint64_t line_no, std::uint64_t column) {
        const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
        if (!seen.insert((lo << 32) | hi).second) {
          if (limits.duplicates == DuplicatePolicy::kDedupe) return;
          throw ParseError(ParseErrorCode::kDuplicateEdge,
                           "duplicate edge {" + std::to_string(lo) + ", " +
                               std::to_string(hi) + "}",
                           line_no, column);
        }
        edges.push_back({a, b});
      });
  return Graph::from_edges(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path,
                          const EdgeListLimits& limits) {
  errno = 0;
  std::ifstream in(path);
  if (!in.good()) {
    throw ParseError(ParseErrorCode::kIoError,
                     "cannot open '" + path + "' for reading: " +
                         errno_detail());
  }
  return read_edge_list(in, limits);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  errno = 0;
  std::ofstream out(path);
  if (!out.good()) {
    throw ParseError(ParseErrorCode::kIoError,
                     "cannot open '" + path + "' for writing: " +
                         errno_detail());
  }
  write_edge_list(g, out);
  out.flush();
  if (!out.good()) {
    throw ParseError(ParseErrorCode::kIoError,
                     "write failure on '" + path + "': " + errno_detail());
  }
}

}  // namespace dmpc::graph
