// JSON serialization of run reports, for tooling and experiment pipelines.
#pragma once

#include "api/solve_types.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "mpc/metrics.hpp"
#include "obs/metrics_registry.hpp"
#include "support/json.hpp"

namespace dmpc {

Json to_json(const mpc::Metrics& metrics);
Json to_json(const mpc::IoRecoveryStats& stats);
Json to_json(const mpc::RecoveryStats& stats);
Json to_json(const verify::Witness& witness);
Json to_json(const verify::ClaimResult& result);
Json to_json(const verify::Certificate& certificate);
Json to_json(const verify::SparsifyAudit& audit);
Json to_json(const obs::EventsSummary& events);
Json to_json(const SolveReport& report);
Json to_json(const Report& report);
Json to_json(const matching::IterationReport& report);
Json to_json(const mis::MisIterationReport& report);

/// Full run dumps: report + per-iteration traces.
Json to_json(const matching::DetMatchingResult& result);
Json to_json(const mis::DetMisResult& result);

}  // namespace dmpc
