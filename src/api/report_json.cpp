#include "api/report_json.hpp"

#include "api/solver.hpp"

namespace dmpc {

Json to_json(const mpc::Metrics& metrics) {
  Json labels = Json::object();
  for (const auto& [label, rounds] : metrics.rounds_by_label()) {
    labels.set(label, rounds);
  }
  Json comm = Json::object();
  for (const auto& [label, words] : metrics.communication_by_label()) {
    comm.set(label, words);
  }
  Json peak = Json::object();
  for (const auto& [label, words] : metrics.peak_load_by_label()) {
    peak.set(label, words);
  }
  return Json::object()
      .set("rounds", metrics.rounds())
      .set("peak_machine_load", metrics.peak_machine_load())
      .set("total_communication", metrics.total_communication())
      .set("rounds_by_label", std::move(labels))
      .set("communication_by_label", std::move(comm))
      .set("peak_load_by_label", std::move(peak));
}

Json to_json(const mpc::IoRecoveryStats& stats) {
  return Json::object()
      .set("io_faults_injected", stats.io_faults_injected)
      .set("retries", stats.retries)
      .set("backoff_units", stats.backoff_units)
      .set("checksum_failures", stats.checksum_failures)
      .set("quarantined_shards", stats.quarantined_shards)
      .set("degraded", stats.degraded)
      .set("shards_verified", stats.shards_verified);
}

Json to_json(const mpc::RecoveryStats& stats) {
  Json retries = Json::object();
  for (const auto& [label, count] : stats.retries_by_label) {
    retries.set(label, count);
  }
  return Json::object()
      .set("faults_injected", stats.faults_injected)
      .set("crashes", stats.crashes)
      .set("messages_dropped", stats.messages_dropped)
      .set("duplicates_suppressed", stats.duplicates_suppressed)
      .set("straggler_rounds", stats.straggler_rounds)
      .set("retries", stats.retries)
      .set("replayed_rounds", stats.replayed_rounds)
      .set("checkpoints", stats.checkpoints)
      .set("checkpoint_words", stats.checkpoint_words)
      .set("retries_by_label", std::move(retries))
      .set("storage", to_json(stats.storage));
}

Json to_json(const verify::Witness& witness) {
  return Json::object()
      .set("kind", witness.kind)
      .set("index", witness.index)
      .set("u", witness.u)
      .set("v", witness.v)
      .set("measured", witness.measured)
      .set("bound", witness.bound)
      .set("detail", witness.detail);
}

Json to_json(const verify::ClaimResult& result) {
  Json json = Json::object()
                  .set("claim", verify::claim_name(result.claim))
                  .set("verdict", verify::verdict_name(result.verdict))
                  .set("checked", result.checked);
  if (result.has_witness) json.set("witness", to_json(result.witness));
  return json;
}

Json to_json(const verify::Certificate& certificate) {
  Json claims = Json::array();
  for (const verify::ClaimResult& claim : certificate.claims) {
    claims.push(to_json(claim));
  }
  return Json::object()
      .set("schema_version", verify::kCertificateSchemaVersion)
      .set("mode", verify::certify_mode_name(certificate.mode))
      .set("ok", certificate.ok())
      .set("failures", certificate.failures())
      .set("claims", std::move(claims));
}

Json to_json(const verify::SparsifyAudit& audit) {
  return Json::object()
      .set("iterations", audit.iterations)
      .set("stages", audit.stages)
      .set("max_degree", audit.max_degree)
      .set("degree_cap", audit.degree_cap)
      .set("worst_degree_ratio", audit.worst_degree_ratio)
      .set("worst_xv_ratio", audit.worst_xv_ratio)
      .set("max_window_multiplier", audit.max_window_multiplier);
}

Json to_json(const obs::EventsSummary& events) {
  return Json::object()
      .set("stream_version", events.stream_version)
      .set("model_events", events.model_events)
      .set("recovery_events", events.recovery_events)
      .set("filtered_events", events.filtered_events);
}

namespace {

std::uint32_t solve_report_schema_version(const SolveReport& report) {
  if (report.events.enabled) return kEventsReportSchemaVersion;
  if (report.profile.enabled) return kProfiledReportSchemaVersion;
  return kReportSchemaVersion;
}

}  // namespace

Json to_json(const SolveReport& report) {
  // Only the golden model section of the registry delta enters the report:
  // the recovery section would break the "identical modulo the recovery
  // block" fault contract, and the host section (wall/RSS, executor
  // scheduling) is non-deterministic by nature. The optional `profile`
  // block (and the schema_version 5 that announces it) appears only for
  // profiled solves, keeping unprofiled output byte-identical to v4; the
  // optional `events_summary` block (schema_version 8) likewise appears
  // only for solves with an event bus attached.
  Json json =
      Json::object()
          .set("schema_version", solve_report_schema_version(report))
          .set("algorithm", report.algorithm_used)
          .set("iterations", report.iterations)
          .set("metrics", to_json(report.metrics))
          .set("recovery", to_json(report.recovery))
          .set("sparsify_audit", to_json(report.sparsify))
          .set("certificate", to_json(report.certificate))
          .set("registry",
               obs::to_json_section(report.registry, obs::MetricSection::kModel,
                                    /*include_zero=*/false));
  if (report.profile.enabled) json.set("profile", to_json(report.profile));
  if (report.events.enabled) {
    json.set("events_summary", to_json(report.events));
  }
  return json;
}

Json to_json(const Report& report) {
  Json json =
      Json::object()
          .set("schema_version", report.schema_version)
          .set("algorithm", report.algorithm)
          .set("iterations", report.iterations)
          .set("metrics", to_json(report.metrics))
          .set("recovery", to_json(report.recovery))
          .set("sparsify_audit", to_json(report.sparsify))
          .set("certificate", to_json(report.certificate))
          .set("registry",
               obs::to_json_section(report.registry, obs::MetricSection::kModel,
                                    /*include_zero=*/false));
  if (report.profile.enabled) json.set("profile", to_json(report.profile));
  if (report.events.enabled) {
    json.set("events_summary", to_json(report.events));
  }
  return json;
}

std::string Solver::report_json(const SolveReport& solve_report) const {
  return to_json(report(solve_report)).dump();
}

Json to_json(const matching::IterationReport& report) {
  return Json::object()
      .set("iteration", report.iteration)
      .set("class", report.cls)
      .set("edges_before", report.edges_before)
      .set("edges_after", report.edges_after)
      .set("matched_pairs", report.matched_pairs)
      .set("progress_fraction", report.progress_fraction)
      .set("selection_trials", report.selection_trials)
      .set("sparsify_stages", report.sparsify_stages)
      .set("estar_max_degree", report.estar_max_degree)
      .set("invariant_degree_ratio", report.invariant_degree_ratio)
      .set("invariant_xv_ratio", report.invariant_xv_ratio)
      .set("window_multiplier", report.window_multiplier);
}

Json to_json(const mis::MisIterationReport& report) {
  return Json::object()
      .set("iteration", report.iteration)
      .set("class", report.cls)
      .set("edges_before", report.edges_before)
      .set("edges_after", report.edges_after)
      .set("independent_added", report.independent_added)
      .set("isolated_added", report.isolated_added)
      .set("progress_fraction", report.progress_fraction)
      .set("selection_trials", report.selection_trials)
      .set("sparsify_stages", report.sparsify_stages)
      .set("qprime_max_degree", report.qprime_max_degree)
      .set("invariant_degree_ratio", report.invariant_degree_ratio)
      .set("invariant_xv_ratio", report.invariant_xv_ratio)
      .set("window_multiplier", report.window_multiplier);
}

Json to_json(const matching::DetMatchingResult& result) {
  Json iterations = Json::array();
  for (const auto& report : result.reports) iterations.push(to_json(report));
  return Json::object()
      .set("schema_version", kReportSchemaVersion)
      .set("matching_size", result.matching.size())
      .set("iterations", result.iterations)
      .set("metrics", to_json(result.metrics))
      .set("recovery", to_json(result.recovery))
      .set("trace", std::move(iterations));
}

Json to_json(const mis::DetMisResult& result) {
  Json iterations = Json::array();
  for (const auto& report : result.reports) iterations.push(to_json(report));
  std::uint64_t size = 0;
  for (bool b : result.in_set) size += b;
  return Json::object()
      .set("schema_version", kReportSchemaVersion)
      .set("mis_size", size)
      .set("iterations", result.iterations)
      .set("metrics", to_json(result.metrics))
      .set("recovery", to_json(result.recovery))
      .set("trace", std::move(iterations));
}

}  // namespace dmpc
