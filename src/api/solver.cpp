#include "api/solver.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "lowdeg/lowdeg_solver.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "mpc/storage.hpp"
#include "obs/events.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/openmetrics.hpp"
#include "obs/trace.hpp"
#include "verify/certifier.hpp"

namespace dmpc {

namespace {

// Copy the SolveOptions fields every pipeline config shares. The three
// config types deliberately have identical field names, so one template
// replaces the former per-call-site copies.
template <typename Config>
Config pipeline_config(const SolveOptions& options) {
  Config config;
  config.trace = options.trace;
  config.events = options.events;
  config.eps = options.eps;
  config.space_headroom = options.space_headroom;
  config.threads = options.threads;
  config.cluster = options.cluster;
  config.faults = options.faults;
  config.recovery = options.recovery;
  return config;
}

// Fold a pipeline's per-iteration sparsifier measurements into the report's
// audit block (checked by the Certifier in full mode).
template <typename IterationReports, typename MaxDegreeOf>
void fill_audit(verify::SparsifyAudit* audit, const IterationReports& reports,
                std::uint64_t degree_cap, MaxDegreeOf&& max_degree_of) {
  audit->degree_cap = degree_cap;
  for (const auto& r : reports) {
    ++audit->iterations;
    if (r.sparsify_stages == 0) continue;
    audit->stages += r.sparsify_stages;
    audit->max_degree = std::max(audit->max_degree, max_degree_of(r));
    audit->worst_degree_ratio =
        std::max(audit->worst_degree_ratio, r.invariant_degree_ratio);
    audit->worst_xv_ratio =
        std::min(audit->worst_xv_ratio, r.invariant_xv_ratio);
    audit->max_window_multiplier =
        std::max(audit->max_window_multiplier, r.window_multiplier);
  }
}

}  // namespace

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidEps:
      return "invalid_eps";
    case StatusCode::kInvalidSpaceHeadroom:
      return "invalid_space_headroom";
    case StatusCode::kInvalidDispatchSlack:
      return "invalid_dispatch_slack";
    case StatusCode::kInvalidThreads:
      return "invalid_threads";
    case StatusCode::kInvalidAlgorithm:
      return "invalid_algorithm";
    case StatusCode::kInvalidTraceFormat:
      return "invalid_trace_format";
    case StatusCode::kInvalidClusterOverrides:
      return "invalid_cluster_overrides";
    case StatusCode::kInvalidFaultPlan:
      return "invalid_fault_plan";
    case StatusCode::kInvalidIoFaultPlan:
      return "invalid_io_fault_plan";
    case StatusCode::kInvalidRetryBudget:
      return "invalid_retry_budget";
    case StatusCode::kUnrecoverableFault:
      return "unrecoverable_fault";
    case StatusCode::kInvalidCertifyMode:
      return "invalid_certify_mode";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kInvalidStorage:
      return "invalid_storage";
    case StatusCode::kInvalidEventFilter:
      return "invalid_event_filter";
    case StatusCode::kInvalidMetricsFormat:
      return "invalid_metrics_format";
  }
  return "unknown";
}

Status Solver::validate(const SolveOptions& options) {
  // NaN comparisons are false, so `!(x > 0)` style predicates reject NaN too.
  if (!(options.eps > 0.0 && options.eps < 1.0)) {
    return Status::error(
        StatusCode::kInvalidEps,
        "eps must satisfy 0 < eps < 1 (machine space is n^eps), got " +
            std::to_string(options.eps));
  }
  if (!(options.space_headroom > 0.0)) {
    return Status::error(
        StatusCode::kInvalidSpaceHeadroom,
        "space_headroom must be > 0, got " +
            std::to_string(options.space_headroom));
  }
  if (!(options.dispatch_slack > 0.0)) {
    return Status::error(
        StatusCode::kInvalidDispatchSlack,
        "dispatch_slack must be > 0, got " +
            std::to_string(options.dispatch_slack));
  }
  if (options.threads > kMaxThreads) {
    return Status::error(
        StatusCode::kInvalidThreads,
        "threads must be <= " + std::to_string(kMaxThreads) +
            " (0 = hardware concurrency), got " +
            std::to_string(options.threads));
  }
  if (options.cluster.machine_space == 1) {
    return Status::error(
        StatusCode::kInvalidClusterOverrides,
        "cluster.machine_space override must be 0 (auto) or >= 2, got 1");
  }
  if (options.storage.backend == mpc::StorageBackend::kMmap &&
      options.storage.shard_dir.empty()) {
    return Status::error(
        StatusCode::kInvalidStorage,
        "storage.backend = mmap requires storage.shard_dir (a directory "
        "written by shard_build)");
  }
  if (options.storage.backend == mpc::StorageBackend::kMemory &&
      !options.storage.shard_dir.empty()) {
    return Status::error(
        StatusCode::kInvalidStorage,
        "storage.shard_dir is set but storage.backend is memory — pass "
        "--storage=mmap or drop the shard directory");
  }
  if (const std::string problem = options.faults.check(); !problem.empty()) {
    return Status::error(StatusCode::kInvalidFaultPlan, problem);
  }
  if (const std::string problem = options.io_faults.check();
      !problem.empty()) {
    return Status::error(StatusCode::kInvalidIoFaultPlan, problem);
  }
  if (options.recovery.backoff_rounds < 1) {
    return Status::error(StatusCode::kInvalidRetryBudget,
                         "recovery.backoff_rounds must be >= 1, got " +
                             std::to_string(options.recovery.backoff_rounds));
  }
  if (options.recovery.max_retries > mpc::RecoveryOptions::kMaxRetries) {
    return Status::error(
        StatusCode::kInvalidRetryBudget,
        "recovery.max_retries must be <= " +
            std::to_string(mpc::RecoveryOptions::kMaxRetries) + ", got " +
            std::to_string(options.recovery.max_retries));
  }
  // Static unrecoverability: reject plans that provably exceed the policy
  // instead of letting the run fail midway with a FaultError.
  for (const mpc::FaultEvent& event : options.faults.events()) {
    const bool needs_replay = event.kind == mpc::FaultKind::kCrash ||
                              event.kind == mpc::FaultKind::kDrop;
    if (!needs_replay) continue;
    if (options.recovery.checkpoint == mpc::CheckpointMode::kOff) {
      return Status::error(
          StatusCode::kUnrecoverableFault,
          std::string("fault plan schedules a ") +
              mpc::fault_kind_name(event.kind) + " at round " +
              std::to_string(event.round) +
              " but recovery.checkpoint is off — nothing to roll back to");
    }
    if (event.attempts > options.recovery.max_retries) {
      return Status::error(
          StatusCode::kUnrecoverableFault,
          std::string("fault plan schedules a ") +
              mpc::fault_kind_name(event.kind) + " at round " +
              std::to_string(event.round) + " firing on " +
              std::to_string(event.attempts) +
              " attempts, exceeding recovery.max_retries = " +
              std::to_string(options.recovery.max_retries));
    }
  }
  return Status();
}

void Solver::require_valid() const {
  Status s = validate(options_);
  if (!s.ok()) throw OptionsError(std::move(s));
}

exec::Executor Solver::make_executor() const {
  return exec::Executor::with_threads(options_.threads);
}

mpc::ClusterConfig Solver::cluster_config(std::uint64_t n,
                                          std::uint64_t m) const {
  require_valid();
  // The §3/§4 provisioning formula (shared by both sparsification
  // pipelines): S = max(64, headroom * n^eps), M sized to hold the input
  // with the paper's constant-factor total-space slack.
  matching::DetMatchingConfig base;
  base.eps = options_.eps;
  base.space_headroom = options_.space_headroom;
  return mpc::apply_overrides(matching::cluster_config_for(base, n, m),
                              options_.cluster);
}

mpc::Cluster Solver::cluster(std::uint64_t n, std::uint64_t m) const {
  mpc::Cluster cluster(cluster_config(n, m));
  cluster.set_executor(make_executor());
  if (!options_.faults.empty()) {
    cluster.set_faults(options_.faults, options_.recovery);
  }
  // Deliberately no set_trace here: the session would bind to this
  // instance's Metrics and dangle after the move; callers attach a trace to
  // the placed cluster.
  return cluster;
}

Report Solver::report(const SolveReport& solve_report) const {
  Report report;
  report.algorithm = solve_report.algorithm_used;
  report.iterations = solve_report.iterations;
  report.metrics = solve_report.metrics;
  report.recovery = solve_report.recovery;
  report.sparsify = solve_report.sparsify;
  report.certificate = solve_report.certificate;
  report.registry = solve_report.registry;
  report.profile = solve_report.profile;
  report.events = solve_report.events;
  // Highest enabled tier wins: events > profile > base. An unobserved solve
  // therefore serializes byte-identically to pre-events output.
  report.schema_version = solve_report.events.enabled
                              ? kEventsReportSchemaVersion
                              : (solve_report.profile.enabled
                                     ? kProfiledReportSchemaVersion
                                     : kReportSchemaVersion);
  return report;
}

void Solver::emit_solve_started(const char* algorithm,
                                const graph::Graph& g) const {
  if (!obs::events_enabled(options_.events)) return;
  obs::ProgressEvent e;
  e.type = obs::EventType::kSolveStarted;
  e.label = algorithm;
  e.value = static_cast<std::int64_t>(g.num_nodes());
  e.detail = "m=" + std::to_string(g.num_edges());
  options_.events->emit(std::move(e));
}

void Solver::emit_solve_finished(SolveReport* report) const {
  obs::EventBus* bus = options_.events;
  if (bus == nullptr) return;
  if (!bus->finished()) {
    obs::ProgressEvent e;
    e.type = obs::EventType::kSolveFinished;
    e.label = report->algorithm_used;
    e.round = report->metrics.rounds();
    e.rounds = report->metrics.rounds();
    e.comm_words = report->metrics.total_communication();
    e.value = static_cast<std::int64_t>(report->iterations);
    bus->emit(std::move(e));
  }
  report->events.enabled = true;
  report->events.stream_version = obs::kEventStreamVersion;
  report->events.model_events = bus->model_events();
  report->events.recovery_events = bus->recovery_events();
  report->events.filtered_events = bus->filtered_events();
  // The bus is per-solve: flush and close it here so sinks are complete the
  // moment the entry point returns (the unwind path does the same).
  bus->finish();
}

void Solver::emit_storage_events(const mpc::Storage& storage) const {
  if (!obs::events_enabled(options_.events)) return;
  // Storage recovery rungs fire at open/verify time, before any cluster
  // (and hence any streaming hook) exists; summarize the backend's ledger
  // into the recovery section instead.
  const mpc::IoRecoveryStats& io = storage.io_recovery();
  const std::string backend =
      mpc::storage_backend_name(storage.backend());
  if (io.retries > 0) {
    obs::ProgressEvent e;
    e.type = obs::EventType::kRecoveryAttempt;
    e.label = "storage/io";
    e.value = static_cast<std::int64_t>(io.retries);
    e.detail = backend;
    options_.events->emit(std::move(e));
  }
  if (io.quarantined_shards > 0) {
    obs::ProgressEvent e;
    e.type = obs::EventType::kRecovered;
    e.label = "storage/quarantine";
    e.value = static_cast<std::int64_t>(io.quarantined_shards);
    e.detail = backend;
    options_.events->emit(std::move(e));
  }
  if (io.degraded > 0) {
    obs::ProgressEvent e;
    e.type = obs::EventType::kStorageDegraded;
    e.label = "storage/degraded";
    e.value = static_cast<std::int64_t>(io.degraded);
    e.detail = backend;
    options_.events->emit(std::move(e));
  }
}

void Solver::flush_observers_on_unwind() const {
  // Order matters for the unwind contract: the event bus first (the stream
  // consumer learns the solve died), then the trace session (ChromeTraceSink
  // buffers its whole document until finish — without this, a
  // CertificationError/FaultError would leave a truncated or empty trace
  // file). Both finishes are idempotent, so the CLI's own finish() calls
  // after catching remain safe.
  if (options_.events != nullptr) options_.events->finish();
  if (options_.trace != nullptr) options_.trace->finish();
}

void Solver::capture_registry_delta(const obs::MetricsSnapshot& before,
                                    SolveReport* report) const {
  auto& registry = obs::MetricsRegistry::global();
  if (active_storage_ != nullptr) {
    // The backend's cumulative recovery ledger (open-time retries and
    // quarantines included) rides in the report's recovery.storage block.
    report->recovery.storage.merge(active_storage_->io_recovery());
  }
  report->metrics.export_to(registry);
  report->recovery.export_to(registry);
  report->profile.export_to(registry);
  if (active_storage_ != nullptr) {
    mpc::export_storage_host_stats(*active_storage_);
  }
  obs::sample_host(registry);
  report->registry = obs::MetricsSnapshot::delta(registry.snapshot(), before);
  last_snapshot_ = report->registry;
}

double Solver::dispatch_degree_bound(std::uint64_t n) const {
  const double delta = options_.eps / 8.0;
  const double bound = std::pow(static_cast<double>(n), delta);
  return options_.dispatch_slack * bound + options_.dispatch_slack;
}

bool Solver::low_degree_regime(const graph::Graph& g) const {
  require_valid();
  if (g.num_nodes() < 2) return true;
  const double n = static_cast<double>(g.num_nodes());
  // §5 needs Delta = O(n^{delta}); additionally, at finite n the pipeline's
  // binding constraint is the 2-hop space check (Delta^2 words on one
  // machine, and the matching path runs on the line graph whose degree is
  // ~2 Delta), so require that to fit in S with room to spare.
  const double s_budget = options_.space_headroom * std::pow(n, options_.eps);
  const double d = static_cast<double>(g.max_degree());
  const double line_degree = 2.0 * d;
  return d <= dispatch_degree_bound(g.num_nodes()) &&
         line_degree * line_degree <= s_budget;
}

MisSolution Solver::mis(const graph::Graph& g) const {
  require_valid();
  emit_solve_started("mis", g);
  try {
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::global().snapshot();
    MisSolution solution;
    obs::RoundProfiler profiler;
    obs::RoundProfiler* prof = options_.profile ? &profiler : nullptr;
    const bool lowdeg =
        options_.algorithm == Algorithm::kLowDegree ||
        (options_.algorithm == Algorithm::kAuto && low_degree_regime(g));
    if (lowdeg) {
      auto config = pipeline_config<lowdeg::LowDegConfig>(options_);
      config.profiler = prof;
      config.storage = active_storage_;
      auto result = lowdeg::lowdeg_mis(g, config);
      solution.in_set = std::move(result.in_set);
      solution.report.algorithm_used = "lowdeg";
      solution.report.iterations = result.stages;
      solution.report.metrics = result.metrics;
      solution.report.recovery = result.recovery;
    } else {
      auto config = pipeline_config<mis::DetMisConfig>(options_);
      config.profiler = prof;
      config.storage = active_storage_;
      auto result = mis::det_mis(g, config);
      solution.in_set = std::move(result.in_set);
      solution.report.algorithm_used = "sparsification";
      solution.report.iterations = result.iterations;
      solution.report.metrics = result.metrics;
      solution.report.recovery = result.recovery;
      fill_audit(&solution.report.sparsify, result.reports,
                 mis::params_for(config, g.num_nodes()).degree_cap(),
                 [](const mis::MisIterationReport& r) {
                   return r.qprime_max_degree;
                 });
    }
    if (prof != nullptr) solution.report.profile = prof->snapshot();
    capture_registry_delta(before, &solution.report);
    finalize_mis_certificate(g, &solution);
    emit_solve_finished(&solution.report);
    return solution;
  } catch (...) {
    flush_observers_on_unwind();
    throw;
  }
}

MatchingSolution Solver::maximal_matching(const graph::Graph& g) const {
  require_valid();
  emit_solve_started("matching", g);
  try {
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::global().snapshot();
    MatchingSolution solution;
    obs::RoundProfiler profiler;
    obs::RoundProfiler* prof = options_.profile ? &profiler : nullptr;
    const bool lowdeg =
        options_.algorithm == Algorithm::kLowDegree ||
        (options_.algorithm == Algorithm::kAuto && low_degree_regime(g));
    if (lowdeg) {
      auto config = pipeline_config<lowdeg::LowDegConfig>(options_);
      config.profiler = prof;
      config.storage = active_storage_;
      auto result = lowdeg::lowdeg_matching(g, config);
      solution.matching = std::move(result.matching);
      solution.report.algorithm_used = "lowdeg";
      solution.report.iterations = result.line_mis.stages;
      solution.report.metrics = result.line_mis.metrics;
      solution.report.recovery = result.line_mis.recovery;
    } else {
      auto config = pipeline_config<matching::DetMatchingConfig>(options_);
      config.profiler = prof;
      config.storage = active_storage_;
      auto result = matching::det_maximal_matching(g, config);
      solution.matching = std::move(result.matching);
      solution.report.algorithm_used = "sparsification";
      solution.report.iterations = result.iterations;
      solution.report.metrics = result.metrics;
      solution.report.recovery = result.recovery;
      fill_audit(&solution.report.sparsify, result.reports,
                 matching::params_for(config, g.num_nodes()).degree_cap(),
                 [](const matching::IterationReport& r) {
                   return r.estar_max_degree;
                 });
    }
    if (prof != nullptr) solution.report.profile = prof->snapshot();
    capture_registry_delta(before, &solution.report);
    finalize_matching_certificate(g, &solution);
    emit_solve_finished(&solution.report);
    return solution;
  } catch (...) {
    flush_observers_on_unwind();
    throw;
  }
}

namespace {

// Scope guard clearing Solver::active_storage_ even when the solve throws
// (CertificationError, FaultError), so a later plain-graph solve on the same
// Solver cannot pick up a dangling backend pointer.
class ActiveStorageScope {
 public:
  ActiveStorageScope(const mpc::Storage** slot, const mpc::Storage* value)
      : slot_(slot) {
    *slot_ = value;
  }
  ~ActiveStorageScope() { *slot_ = nullptr; }
  ActiveStorageScope(const ActiveStorageScope&) = delete;
  ActiveStorageScope& operator=(const ActiveStorageScope&) = delete;

 private:
  const mpc::Storage** slot_;
};

}  // namespace

void Solver::storage_gate(const mpc::Storage& storage) const {
  storage_integrity_ = verify::Certifier::skipped(
      verify::Claim::kStorageIntegrity);
  const bool paranoid =
      storage.verify_mode() == mpc::VerifyMode::kParanoid;
  const bool certifying = options_.certify != verify::CertifyMode::kOff;
  if (!paranoid && !certifying) return;
  // Run the integrity pass before the pipeline ever dereferences the
  // adjacency: a corrupt shard must fail the gate, never feed the solve.
  const mpc::IntegrityReport integrity = storage.verify_integrity();
  storage_integrity_ = verify::Certifier::check_storage_integrity(integrity);
  if (integrity.status != mpc::IntegrityReport::Status::kFailed) return;
  if (certifying) {
    verify::Certificate certificate;
    certificate.mode = options_.certify;
    certificate.claims.push_back(storage_integrity_);
    last_certificate_ = certificate;
    throw verify::CertificationError(std::move(certificate));
  }
  throw mpc::StorageError(mpc::StorageErrorCode::kChecksumMismatch,
                          "paranoid re-verification failed: " +
                              integrity.detail,
                          integrity.bad_shard);
}

verify::ClaimResult Solver::storage_claim() const {
  if (active_storage_ == nullptr) {
    return verify::Certifier::skipped(verify::Claim::kStorageIntegrity);
  }
  return storage_integrity_;
}

MisSolution Solver::mis(const mpc::Storage& storage) const {
  require_valid();
  ActiveStorageScope scope(&active_storage_, &storage);
  try {
    storage_gate(storage);
  } catch (...) {
    // The gate throws before the graph solve's own unwind handler exists;
    // close the sinks here so a failed integrity gate still leaves complete
    // artifacts.
    flush_observers_on_unwind();
    throw;
  }
  emit_storage_events(storage);
  return mis(storage.graph());
}

MatchingSolution Solver::maximal_matching(const mpc::Storage& storage) const {
  require_valid();
  ActiveStorageScope scope(&active_storage_, &storage);
  try {
    storage_gate(storage);
  } catch (...) {
    flush_observers_on_unwind();
    throw;
  }
  emit_storage_events(storage);
  return maximal_matching(storage.graph());
}

std::unique_ptr<mpc::Storage> Solver::open_storage(
    const std::string& input_path, const graph::EdgeListLimits& limits) const {
  require_valid();
  return mpc::open_storage(options_.storage, input_path, limits,
                           options_.io_faults, options_.recovery);
}

const verify::Certificate& Solver::certificate() const {
  return last_certificate_;
}

const obs::MetricsSnapshot& Solver::metrics_snapshot() const {
  return last_snapshot_;
}

std::string Solver::metrics_openmetrics() const {
  return obs::to_openmetrics(last_snapshot_);
}

verify::Certificate Solver::certify_common(
    const graph::Graph& g, const SolveReport& report,
    std::vector<verify::ClaimResult> answer_claims,
    const std::function<bool(std::uint64_t*, std::uint64_t*,
                             std::string*)>& replay) const {
  verify::Certificate certificate;
  certificate.mode = options_.certify;
  certificate.claims = std::move(answer_claims);

  const verify::Certifier certifier(make_executor());
  certificate.claims.push_back(certifier.check_space_accounting(
      report.metrics, cluster_config(g.num_nodes(), g.num_edges()).machine_space));

  if (options_.certify == verify::CertifyMode::kFull) {
    certificate.claims.push_back(
        certifier.check_sparsifier_degree_cap(report.sparsify));
    certificate.claims.push_back(
        certifier.check_sparsifier_invariants(report.sparsify));
    certificate.claims.push_back(
        certifier.check_metrics_consistency(report.metrics));
    // Replay identity runs unconditionally in full mode: under a fault plan
    // it checks the recovery contract (faulted == fault-free, bytewise);
    // without one it re-derives the answer and checks reproducibility. The
    // resulting claim bytes are identical either way, so certified report
    // JSON stays comparable across fault axes (modulo the recovery block).
    std::uint64_t compared = 0, diff_index = 0;
    std::string detail;
    const bool identical = replay(&compared, &diff_index, &detail);
    certificate.claims.push_back(verify::Certifier::replay_claim(
        identical, compared, diff_index, detail));
  }
  // The pre-solve storage gate's verdict (skipped for plain-graph solves
  // and backends without checksums): a certified answer speaks to the
  // integrity of the bytes it was computed from.
  certificate.claims.push_back(storage_claim());
  return certificate;
}

void Solver::record_certificate(verify::Certificate certificate,
                                SolveReport* report) const {
  // Certification happens after the pipeline (and its cluster) are gone; a
  // still-attached session would snapshot freed Metrics, so detach before
  // opening the verify span. The span comes strictly after every pipeline
  // span: a certify=off trace is a byte-prefix of the certify=on trace.
  if (obs::enabled(options_.trace)) {
    options_.trace->attach_metrics(nullptr);
    obs::Span span(options_.trace, "verify/certify");
    span.arg("mode", std::string(verify::certify_mode_name(certificate.mode)));
    span.arg("claims", static_cast<std::uint64_t>(certificate.claims.size()));
    span.arg("failures", certificate.failures());
  }
  // One model-section certificate_claim event per claim, emitted before the
  // failure throw below so a failing certificate is visible in the stream.
  // Claim order is the fixed certificate order, so the sequence is golden
  // for a fixed certify mode.
  if (obs::events_enabled(options_.events)) {
    for (const verify::ClaimResult& claim : certificate.claims) {
      obs::ProgressEvent e;
      e.type = obs::EventType::kCertificateClaim;
      e.label = verify::claim_name(claim.claim);
      e.value = claim.verdict == verify::Verdict::kFail ? 0 : 1;
      e.detail = verify::verdict_name(claim.verdict);
      options_.events->emit(std::move(e));
    }
  }
  report->certificate = certificate;
  last_certificate_ = std::move(certificate);
  if (!last_certificate_.ok()) {
    throw verify::CertificationError(last_certificate_);
  }
}

void Solver::finalize_mis_certificate(const graph::Graph& g,
                                      MisSolution* solution) const {
  if (options_.certify == verify::CertifyMode::kOff) {
    last_certificate_ = verify::Certificate{};
    return;
  }
  const verify::Certifier certifier(make_executor());
  std::vector<verify::ClaimResult> claims;
  claims.push_back(certifier.check_mis_independence(g, solution->in_set));
  claims.push_back(certifier.check_mis_maximality(g, solution->in_set));
  auto replay = [&](std::uint64_t* compared, std::uint64_t* diff_index,
                    std::string* detail) {
    SolveOptions replay_options = options_;
    replay_options.faults = mpc::FaultPlan{};
    replay_options.trace = nullptr;
    replay_options.events = nullptr;  // replay must not pollute the stream
    replay_options.certify = verify::CertifyMode::kOff;
    const MisSolution clean = Solver(replay_options).mis(g);
    *compared = solution->in_set.size();
    for (std::uint64_t i = 0; i < solution->in_set.size(); ++i) {
      if (solution->in_set[i] != clean.in_set[i]) {
        *diff_index = i;
        *detail = "fault-free replay disagrees on node " +
                  std::to_string(i);
        return false;
      }
    }
    return true;
  };
  record_certificate(
      certify_common(g, solution->report, std::move(claims), replay),
      &solution->report);
}

void Solver::finalize_matching_certificate(const graph::Graph& g,
                                           MatchingSolution* solution) const {
  if (options_.certify == verify::CertifyMode::kOff) {
    last_certificate_ = verify::Certificate{};
    return;
  }
  const verify::Certifier certifier(make_executor());
  std::vector<verify::ClaimResult> claims;
  claims.push_back(certifier.check_matching_validity(g, solution->matching));
  claims.push_back(certifier.check_matching_maximality(g, solution->matching));
  auto replay = [&](std::uint64_t* compared, std::uint64_t* diff_index,
                    std::string* detail) {
    SolveOptions replay_options = options_;
    replay_options.faults = mpc::FaultPlan{};
    replay_options.trace = nullptr;
    replay_options.events = nullptr;  // replay must not pollute the stream
    replay_options.certify = verify::CertifyMode::kOff;
    const MatchingSolution clean = Solver(replay_options).maximal_matching(g);
    *compared = solution->matching.size();
    if (solution->matching.size() != clean.matching.size()) {
      *diff_index = std::min(solution->matching.size(), clean.matching.size());
      *detail = "run matched " + std::to_string(solution->matching.size()) +
                " edges, fault-free replay matched " +
                std::to_string(clean.matching.size());
      return false;
    }
    for (std::uint64_t i = 0; i < solution->matching.size(); ++i) {
      if (solution->matching[i] != clean.matching[i]) {
        *diff_index = i;
        *detail = "fault-free replay disagrees at matching slot " +
                  std::to_string(i);
        return false;
      }
    }
    return true;
  };
  record_certificate(
      certify_common(g, solution->report, std::move(claims), replay),
      &solution->report);
}

}  // namespace dmpc
