#include "api/solver.hpp"

#include <cmath>
#include <string>

#include "lowdeg/lowdeg_solver.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"

namespace dmpc {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidEps:
      return "invalid_eps";
    case StatusCode::kInvalidSpaceHeadroom:
      return "invalid_space_headroom";
    case StatusCode::kInvalidDispatchSlack:
      return "invalid_dispatch_slack";
    case StatusCode::kInvalidThreads:
      return "invalid_threads";
    case StatusCode::kInvalidAlgorithm:
      return "invalid_algorithm";
    case StatusCode::kInvalidTraceFormat:
      return "invalid_trace_format";
  }
  return "unknown";
}

Status Solver::validate(const SolveOptions& options) {
  // NaN comparisons are false, so `!(x > 0)` style predicates reject NaN too.
  if (!(options.eps > 0.0 && options.eps < 1.0)) {
    return Status::error(
        StatusCode::kInvalidEps,
        "eps must satisfy 0 < eps < 1 (machine space is n^eps), got " +
            std::to_string(options.eps));
  }
  if (!(options.space_headroom > 0.0)) {
    return Status::error(
        StatusCode::kInvalidSpaceHeadroom,
        "space_headroom must be > 0, got " +
            std::to_string(options.space_headroom));
  }
  if (!(options.dispatch_slack > 0.0)) {
    return Status::error(
        StatusCode::kInvalidDispatchSlack,
        "dispatch_slack must be > 0, got " +
            std::to_string(options.dispatch_slack));
  }
  if (options.threads > kMaxThreads) {
    return Status::error(
        StatusCode::kInvalidThreads,
        "threads must be <= " + std::to_string(kMaxThreads) +
            " (0 = hardware concurrency), got " +
            std::to_string(options.threads));
  }
  return Status();
}

void Solver::require_valid() const {
  Status s = validate(options_);
  if (!s.ok()) throw OptionsError(std::move(s));
}

exec::Executor Solver::make_executor() const {
  return exec::Executor::with_threads(options_.threads);
}

double Solver::dispatch_degree_bound(std::uint64_t n) const {
  const double delta = options_.eps / 8.0;
  const double bound = std::pow(static_cast<double>(n), delta);
  return options_.dispatch_slack * bound + options_.dispatch_slack;
}

bool Solver::low_degree_regime(const graph::Graph& g) const {
  require_valid();
  if (g.num_nodes() < 2) return true;
  const double n = static_cast<double>(g.num_nodes());
  // §5 needs Delta = O(n^{delta}); additionally, at finite n the pipeline's
  // binding constraint is the 2-hop space check (Delta^2 words on one
  // machine, and the matching path runs on the line graph whose degree is
  // ~2 Delta), so require that to fit in S with room to spare.
  const double s_budget = options_.space_headroom * std::pow(n, options_.eps);
  const double d = static_cast<double>(g.max_degree());
  const double line_degree = 2.0 * d;
  return d <= dispatch_degree_bound(g.num_nodes()) &&
         line_degree * line_degree <= s_budget;
}

MisSolution Solver::mis(const graph::Graph& g) const {
  require_valid();
  MisSolution solution;
  const bool lowdeg =
      options_.algorithm == Algorithm::kLowDegree ||
      (options_.algorithm == Algorithm::kAuto && low_degree_regime(g));
  if (lowdeg) {
    lowdeg::LowDegConfig config;
    config.trace = options_.trace;
    config.eps = options_.eps;
    config.space_headroom = options_.space_headroom;
    config.threads = options_.threads;
    auto result = lowdeg::lowdeg_mis(g, config);
    solution.in_set = std::move(result.in_set);
    solution.report.algorithm_used = "lowdeg";
    solution.report.iterations = result.stages;
    solution.report.metrics = result.metrics;
  } else {
    mis::DetMisConfig config;
    config.trace = options_.trace;
    config.eps = options_.eps;
    config.space_headroom = options_.space_headroom;
    config.threads = options_.threads;
    auto result = mis::det_mis(g, config);
    solution.in_set = std::move(result.in_set);
    solution.report.algorithm_used = "sparsification";
    solution.report.iterations = result.iterations;
    solution.report.metrics = result.metrics;
  }
  return solution;
}

MatchingSolution Solver::maximal_matching(const graph::Graph& g) const {
  require_valid();
  MatchingSolution solution;
  const bool lowdeg =
      options_.algorithm == Algorithm::kLowDegree ||
      (options_.algorithm == Algorithm::kAuto && low_degree_regime(g));
  if (lowdeg) {
    lowdeg::LowDegConfig config;
    config.trace = options_.trace;
    config.eps = options_.eps;
    config.space_headroom = options_.space_headroom;
    config.threads = options_.threads;
    auto result = lowdeg::lowdeg_matching(g, config);
    solution.matching = std::move(result.matching);
    solution.report.algorithm_used = "lowdeg";
    solution.report.iterations = result.line_mis.stages;
    solution.report.metrics = result.line_mis.metrics;
  } else {
    matching::DetMatchingConfig config;
    config.trace = options_.trace;
    config.eps = options_.eps;
    config.space_headroom = options_.space_headroom;
    config.threads = options_.threads;
    auto result = matching::det_maximal_matching(g, config);
    solution.matching = std::move(result.matching);
    solution.report.algorithm_used = "sparsification";
    solution.report.iterations = result.iterations;
    solution.report.metrics = result.metrics;
  }
  return solution;
}

}  // namespace dmpc
