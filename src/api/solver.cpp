#include "api/solver.hpp"

#include <cmath>
#include <string>

#include "lowdeg/lowdeg_solver.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"

namespace dmpc {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidEps:
      return "invalid_eps";
    case StatusCode::kInvalidSpaceHeadroom:
      return "invalid_space_headroom";
    case StatusCode::kInvalidDispatchSlack:
      return "invalid_dispatch_slack";
    case StatusCode::kInvalidThreads:
      return "invalid_threads";
    case StatusCode::kInvalidAlgorithm:
      return "invalid_algorithm";
    case StatusCode::kInvalidTraceFormat:
      return "invalid_trace_format";
    case StatusCode::kInvalidClusterOverrides:
      return "invalid_cluster_overrides";
    case StatusCode::kInvalidFaultPlan:
      return "invalid_fault_plan";
    case StatusCode::kInvalidRetryBudget:
      return "invalid_retry_budget";
    case StatusCode::kUnrecoverableFault:
      return "unrecoverable_fault";
  }
  return "unknown";
}

Status Solver::validate(const SolveOptions& options) {
  // NaN comparisons are false, so `!(x > 0)` style predicates reject NaN too.
  if (!(options.eps > 0.0 && options.eps < 1.0)) {
    return Status::error(
        StatusCode::kInvalidEps,
        "eps must satisfy 0 < eps < 1 (machine space is n^eps), got " +
            std::to_string(options.eps));
  }
  if (!(options.space_headroom > 0.0)) {
    return Status::error(
        StatusCode::kInvalidSpaceHeadroom,
        "space_headroom must be > 0, got " +
            std::to_string(options.space_headroom));
  }
  if (!(options.dispatch_slack > 0.0)) {
    return Status::error(
        StatusCode::kInvalidDispatchSlack,
        "dispatch_slack must be > 0, got " +
            std::to_string(options.dispatch_slack));
  }
  if (options.threads > kMaxThreads) {
    return Status::error(
        StatusCode::kInvalidThreads,
        "threads must be <= " + std::to_string(kMaxThreads) +
            " (0 = hardware concurrency), got " +
            std::to_string(options.threads));
  }
  if (options.cluster.machine_space == 1) {
    return Status::error(
        StatusCode::kInvalidClusterOverrides,
        "cluster.machine_space override must be 0 (auto) or >= 2, got 1");
  }
  if (const std::string problem = options.faults.check(); !problem.empty()) {
    return Status::error(StatusCode::kInvalidFaultPlan, problem);
  }
  if (options.recovery.backoff_rounds < 1) {
    return Status::error(StatusCode::kInvalidRetryBudget,
                         "recovery.backoff_rounds must be >= 1, got " +
                             std::to_string(options.recovery.backoff_rounds));
  }
  if (options.recovery.max_retries > mpc::RecoveryOptions::kMaxRetries) {
    return Status::error(
        StatusCode::kInvalidRetryBudget,
        "recovery.max_retries must be <= " +
            std::to_string(mpc::RecoveryOptions::kMaxRetries) + ", got " +
            std::to_string(options.recovery.max_retries));
  }
  // Static unrecoverability: reject plans that provably exceed the policy
  // instead of letting the run fail midway with a FaultError.
  for (const mpc::FaultEvent& event : options.faults.events()) {
    const bool needs_replay = event.kind == mpc::FaultKind::kCrash ||
                              event.kind == mpc::FaultKind::kDrop;
    if (!needs_replay) continue;
    if (options.recovery.checkpoint == mpc::CheckpointMode::kOff) {
      return Status::error(
          StatusCode::kUnrecoverableFault,
          std::string("fault plan schedules a ") +
              mpc::fault_kind_name(event.kind) + " at round " +
              std::to_string(event.round) +
              " but recovery.checkpoint is off — nothing to roll back to");
    }
    if (event.attempts > options.recovery.max_retries) {
      return Status::error(
          StatusCode::kUnrecoverableFault,
          std::string("fault plan schedules a ") +
              mpc::fault_kind_name(event.kind) + " at round " +
              std::to_string(event.round) + " firing on " +
              std::to_string(event.attempts) +
              " attempts, exceeding recovery.max_retries = " +
              std::to_string(options.recovery.max_retries));
    }
  }
  return Status();
}

void Solver::require_valid() const {
  Status s = validate(options_);
  if (!s.ok()) throw OptionsError(std::move(s));
}

exec::Executor Solver::make_executor() const {
  return exec::Executor::with_threads(options_.threads);
}

mpc::ClusterConfig Solver::cluster_config(std::uint64_t n,
                                          std::uint64_t m) const {
  require_valid();
  // The §3/§4 provisioning formula (shared by both sparsification
  // pipelines): S = max(64, headroom * n^eps), M sized to hold the input
  // with the paper's constant-factor total-space slack.
  matching::DetMatchingConfig base;
  base.eps = options_.eps;
  base.space_headroom = options_.space_headroom;
  return mpc::apply_overrides(matching::cluster_config_for(base, n, m),
                              options_.cluster);
}

mpc::Cluster Solver::cluster(std::uint64_t n, std::uint64_t m) const {
  mpc::Cluster cluster(cluster_config(n, m));
  cluster.set_executor(make_executor());
  if (!options_.faults.empty()) {
    cluster.set_faults(options_.faults, options_.recovery);
  }
  // Deliberately no set_trace here: the session would bind to this
  // instance's Metrics and dangle after the move; callers attach a trace to
  // the placed cluster.
  return cluster;
}

Report Solver::report(const SolveReport& solve_report) const {
  Report report;
  report.algorithm = solve_report.algorithm_used;
  report.iterations = solve_report.iterations;
  report.metrics = solve_report.metrics;
  report.recovery = solve_report.recovery;
  return report;
}

double Solver::dispatch_degree_bound(std::uint64_t n) const {
  const double delta = options_.eps / 8.0;
  const double bound = std::pow(static_cast<double>(n), delta);
  return options_.dispatch_slack * bound + options_.dispatch_slack;
}

bool Solver::low_degree_regime(const graph::Graph& g) const {
  require_valid();
  if (g.num_nodes() < 2) return true;
  const double n = static_cast<double>(g.num_nodes());
  // §5 needs Delta = O(n^{delta}); additionally, at finite n the pipeline's
  // binding constraint is the 2-hop space check (Delta^2 words on one
  // machine, and the matching path runs on the line graph whose degree is
  // ~2 Delta), so require that to fit in S with room to spare.
  const double s_budget = options_.space_headroom * std::pow(n, options_.eps);
  const double d = static_cast<double>(g.max_degree());
  const double line_degree = 2.0 * d;
  return d <= dispatch_degree_bound(g.num_nodes()) &&
         line_degree * line_degree <= s_budget;
}

MisSolution Solver::mis(const graph::Graph& g) const {
  require_valid();
  MisSolution solution;
  const bool lowdeg =
      options_.algorithm == Algorithm::kLowDegree ||
      (options_.algorithm == Algorithm::kAuto && low_degree_regime(g));
  if (lowdeg) {
    lowdeg::LowDegConfig config;
    config.trace = options_.trace;
    config.eps = options_.eps;
    config.space_headroom = options_.space_headroom;
    config.threads = options_.threads;
    config.cluster = options_.cluster;
    config.faults = options_.faults;
    config.recovery = options_.recovery;
    auto result = lowdeg::lowdeg_mis(g, config);
    solution.in_set = std::move(result.in_set);
    solution.report.algorithm_used = "lowdeg";
    solution.report.iterations = result.stages;
    solution.report.metrics = result.metrics;
    solution.report.recovery = result.recovery;
  } else {
    mis::DetMisConfig config;
    config.trace = options_.trace;
    config.eps = options_.eps;
    config.space_headroom = options_.space_headroom;
    config.threads = options_.threads;
    config.cluster = options_.cluster;
    config.faults = options_.faults;
    config.recovery = options_.recovery;
    auto result = mis::det_mis(g, config);
    solution.in_set = std::move(result.in_set);
    solution.report.algorithm_used = "sparsification";
    solution.report.iterations = result.iterations;
    solution.report.metrics = result.metrics;
    solution.report.recovery = result.recovery;
  }
  return solution;
}

MatchingSolution Solver::maximal_matching(const graph::Graph& g) const {
  require_valid();
  MatchingSolution solution;
  const bool lowdeg =
      options_.algorithm == Algorithm::kLowDegree ||
      (options_.algorithm == Algorithm::kAuto && low_degree_regime(g));
  if (lowdeg) {
    lowdeg::LowDegConfig config;
    config.trace = options_.trace;
    config.eps = options_.eps;
    config.space_headroom = options_.space_headroom;
    config.threads = options_.threads;
    config.cluster = options_.cluster;
    config.faults = options_.faults;
    config.recovery = options_.recovery;
    auto result = lowdeg::lowdeg_matching(g, config);
    solution.matching = std::move(result.matching);
    solution.report.algorithm_used = "lowdeg";
    solution.report.iterations = result.line_mis.stages;
    solution.report.metrics = result.line_mis.metrics;
    solution.report.recovery = result.line_mis.recovery;
  } else {
    matching::DetMatchingConfig config;
    config.trace = options_.trace;
    config.eps = options_.eps;
    config.space_headroom = options_.space_headroom;
    config.threads = options_.threads;
    config.cluster = options_.cluster;
    config.faults = options_.faults;
    config.recovery = options_.recovery;
    auto result = matching::det_maximal_matching(g, config);
    solution.matching = std::move(result.matching);
    solution.report.algorithm_used = "sparsification";
    solution.report.iterations = result.iterations;
    solution.report.metrics = result.metrics;
    solution.report.recovery = result.recovery;
  }
  return solution;
}

}  // namespace dmpc
