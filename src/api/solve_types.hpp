// Public façade types: options, reports, and solution records for the
// deterministic MIS / maximal matching API (consumed through dmpc::Solver,
// api/solver.hpp).
//
// The API implements Theorem 1's dispatch: with Delta <= n^{delta} the §5
// low-degree pipeline runs in O(log Delta + log log n) rounds; otherwise the
// §3/§4 sparsification pipeline runs in O(log n) = O(log Delta) rounds. Both
// are fully deterministic: same graph + same options => identical output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"
#include "mpc/faults.hpp"
#include "mpc/metrics.hpp"
#include "mpc/storage.hpp"
#include "obs/events.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "verify/certificate.hpp"

namespace dmpc::obs {
class TraceSession;
}

namespace dmpc {

enum class Algorithm {
  kAuto,            ///< Theorem-1 dispatch on Delta vs n^{delta}.
  kSparsification,  ///< §3/§4 pipeline (any Delta).
  kLowDegree,       ///< §5 pipeline (requires small Delta).
};

struct SolveOptions {
  Algorithm algorithm = Algorithm::kAuto;
  /// Machine-space exponent: S = Theta(n^eps) words. Valid range (0, 1).
  double eps = 0.5;
  /// Constant-factor headroom on S (absorbs the paper's O(n^{8 delta})).
  /// Must be > 0.
  double space_headroom = 8.0;
  /// Theorem-1 dispatch threshold slack: the low-degree path is considered
  /// when Delta <= dispatch_slack * n^{eps/8} + dispatch_slack (and the
  /// 2-hop structures fit in S). Must be > 0.
  double dispatch_slack = 4.0;
  /// Host threads for per-machine local computation (seed evaluation,
  /// conditional-expectation sweeps, degree scans): 0 = hardware
  /// concurrency, 1 = serial. Model-level local computation is free, so
  /// this changes wall time only — solutions, reports, and golden JSONL
  /// traces are byte-identical for every value (see docs/API.md).
  std::uint32_t threads = 1;
  /// Cluster provisioning. The Solver owns the derivation (S and M are
  /// auto-sized from n, eps, and space_headroom when this is default);
  /// non-zero fields pin an exact geometry. Hand-building mpc::ClusterConfig
  /// at call sites is deprecated in favor of these overrides.
  mpc::ClusterOverrides cluster;
  /// Graph residency selection: the in-memory CSR (default) or a mapped
  /// shard directory built by tools/shard_build (backend == kMmap requires
  /// storage.shard_dir, and vice versa — anything else is kInvalidStorage).
  /// Residency never touches the model: solutions, kModel metrics, report
  /// JSON, and traces are byte-identical across backends (docs/STORAGE.md).
  mpc::StorageOptions storage;
  /// Deterministic fault schedule injected into the simulated cluster. The
  /// default (empty) plan is the fault-free run; see docs/FAULTS.md for the
  /// identical-output recovery contract.
  mpc::FaultPlan faults;
  /// Deterministic host-I/O fault schedule injected into the storage layer
  /// (short reads, EIO, checksum corruption, mmap failures, slow I/O keyed
  /// on shard index and access ordinal — mpc/io_faults.hpp). A no-op for
  /// the in-memory backend. The recovery ladder (retry -> quarantine ->
  /// degrade) guarantees byte-identical solutions, reports (modulo the
  /// recovery block), and traces for any admissible plan within budget.
  mpc::IoFaultPlan io_faults;
  /// Retry/checkpoint policy tolerating `faults` (validated against it:
  /// a plan that provably exceeds the budget is kUnrecoverableFault).
  mpc::RecoveryOptions recovery;
  /// Optional tracing sink (non-owning; null = tracing off, zero cost).
  obs::TraceSession* trace = nullptr;
  /// Optional progress-event bus (non-owning; null = events off, zero
  /// cost). When attached, the solve emits the typed live-telemetry stream
  /// (obs/events.hpp): solve/phase/round lifecycle in the model section —
  /// byte-identical across thread counts, fault plans, and storage backends
  /// — and checkpoint/retry/storage rungs in the recovery section. The
  /// report then carries an `events_summary` block and stamps
  /// kEventsReportSchemaVersion; without a bus, reports are byte-identical
  /// to pre-events output. The Solver finishes (flushes) the bus before
  /// returning — including on CertificationError/FaultError unwind paths.
  obs::EventBus* events = nullptr;
  /// Round profiler: record the per-round load-skew timeline (per-machine
  /// load observations folded into max/mean/Gini/top-k records — see
  /// obs/profiler.hpp) and embed it as the report's `profile` block
  /// (kProfiledReportSchemaVersion). The profile is model-deterministic:
  /// byte-identical
  /// across thread counts and admissible fault plans. Off by default; when
  /// off, reports and traces are byte-identical to a build without the
  /// profiler.
  bool profile = false;
  /// Checked mode: kOff returns the answer uncertified (zero cost); kAnswer
  /// certifies the answer itself (MIS/matching claims + space accounting);
  /// kFull additionally certifies the sparsifier invariants, metrics
  /// consistency, and — under an active fault plan — replay identity
  /// against a fault-free re-run. A failed certificate throws a typed
  /// verify::CertificationError; certification never perturbs solutions,
  /// metrics, or traces (it appends a verify/certify span after the
  /// pipeline span and adds a report block).
  verify::CertifyMode certify = verify::CertifyMode::kOff;
};

struct SolveReport {
  std::string algorithm_used;     ///< "sparsification" or "lowdeg".
  std::uint64_t iterations = 0;   ///< Outer iterations / stages.
  mpc::Metrics metrics;           ///< Rounds, peak load, communication.
  mpc::RecoveryStats recovery;    ///< Fault/retry ledger (all-zero clean).
  /// Worst-case sparsifier stage measurements (sparsification path only;
  /// zero-stage audit on the lowdeg path).
  verify::SparsifyAudit sparsify;
  /// The certificate produced in checked mode (empty when certify == kOff).
  verify::Certificate certificate;
  /// This solve's delta over the process-wide obs::MetricsRegistry (taken
  /// around the pipeline, before any certification replay). The model
  /// section is golden — byte-identical across runs, thread counts, and
  /// admissible fault plans — and is the only section serialized into
  /// report JSON (as the "registry" block); recovery/host sections are for
  /// benches and --metrics-out.
  obs::MetricsSnapshot registry;
  /// Skew-timeline snapshot (enabled == false unless SolveOptions::profile
  /// was set). Model-deterministic; serialized as the `profile` block.
  obs::ProfileSnapshot profile;
  /// Event-stream summary (enabled == false unless SolveOptions::events
  /// was attached). Serialized as the `events_summary` block; model_events
  /// is model-deterministic, recovery/filtered counts are plan-scoped.
  obs::EventsSummary events;
};

/// Version of the serialized report schema. Bumped to 2 when the
/// "schema_version" and "recovery" keys were added, to 3 when the
/// "certificate" and "sparsify_audit" blocks were added, and to 4 when the
/// "registry" block (model-section metrics-registry delta) was added;
/// downstream parsers should branch on this rather than sniffing keys.
/// Version 5 added the optional `profile` block (round-profiler skew
/// timeline). Version 6 adds the recovery block's "storage" sub-object
/// (host storage-layer recovery ledger: io-fault injections, retries,
/// checksum failures, quarantines, degradation) and the storage_integrity
/// certificate claim; like the rest of the recovery block it is all-zero on
/// a clean run, so reports stay byte-identical across io-fault plans modulo
/// the typed "recovery" key.
inline constexpr std::uint32_t kReportSchemaVersion = 6;

/// Schema version of reports carrying the `profile` block (a report carries
/// this exactly when it was solved with SolveOptions::profile on).
inline constexpr std::uint32_t kProfiledReportSchemaVersion = 7;

/// Schema version of reports carrying the `events_summary` block (a report
/// carries this exactly when it was solved with an EventBus attached).
/// An events-enabled report also carries the `profile` block when profiling
/// was on; the stamp is the highest enabled tier (events > profile > base).
inline constexpr std::uint32_t kEventsReportSchemaVersion = 8;

/// The typed, versioned view of a SolveReport that Solver::report() returns;
/// serialize with to_json(report) / Solver::report_json(). Downstream
/// parsers consume this struct (or its JSON) instead of scraping strings.
struct Report {
  std::uint32_t schema_version = kReportSchemaVersion;
  std::string algorithm;          ///< "sparsification" or "lowdeg".
  std::uint64_t iterations = 0;
  mpc::Metrics metrics;
  mpc::RecoveryStats recovery;
  verify::SparsifyAudit sparsify;
  verify::Certificate certificate;  ///< Empty when certify == kOff.
  obs::MetricsSnapshot registry;    ///< Per-solve registry delta.
  obs::ProfileSnapshot profile;     ///< Skew timeline (when profiled).
  obs::EventsSummary events;        ///< Event-stream summary (when attached).
};

struct MisSolution {
  std::vector<bool> in_set;
  SolveReport report;
};

struct MatchingSolution {
  std::vector<graph::EdgeId> matching;
  SolveReport report;
};

}  // namespace dmpc
