// dmpc::Solver — the configured-facade form of the public API.
//
// Lifecycle:
//   1. Construct with SolveOptions (or default).
//   2. validate() — typed Status per rejectable option (no DMPC_CHECK
//      aborts for caller input errors). Optional: the solve entry points
//      re-validate and throw OptionsError on bad options.
//   3. mis(g) / maximal_matching(g) — Theorem-1 dispatch, any number of
//      times, on any graphs; the Solver is immutable and (for a serial
//      executor) stateless across calls.
//
// Determinism contract: for a fixed graph and fixed options *excluding
// `threads` and `storage`*, solutions, SolveReports, and golden JSONL traces
// are byte-identical for every threads value and storage backend (see
// docs/API.md, "Determinism under parallelism", and docs/STORAGE.md).
// The Solver is the only solve entry point: the former free-function
// wrappers (solve_mis / solve_maximal_matching) were removed — see the
// migration table in docs/API.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/solve_types.hpp"
#include "api/status.hpp"
#include "exec/parallel.hpp"
#include "graph/graph.hpp"
#include "verify/certificate.hpp"

namespace dmpc {

class Solver {
 public:
  /// Hard cap on SolveOptions::threads — a guard against garbage input
  /// (e.g. passing a node count where a thread count was meant), not a
  /// tuning limit.
  static constexpr std::uint32_t kMaxThreads = 4096;

  Solver() = default;
  explicit Solver(SolveOptions options) : options_(std::move(options)) {}

  const SolveOptions& options() const { return options_; }

  /// Validate this solver's options. Rules (one StatusCode each):
  ///   - 0 < eps < 1                 (kInvalidEps)
  ///   - space_headroom > 0          (kInvalidSpaceHeadroom)
  ///   - dispatch_slack > 0          (kInvalidDispatchSlack)
  ///   - threads <= kMaxThreads      (kInvalidThreads; 0 = hardware)
  ///   - cluster.machine_space 0 or >= 2  (kInvalidClusterOverrides)
  ///   - faults structurally well formed  (kInvalidFaultPlan)
  ///   - recovery within bounds           (kInvalidRetryBudget)
  ///   - plan recoverable under policy    (kUnrecoverableFault): a crash or
  ///     drop event with checkpointing off, or firing on more attempts than
  ///     max_retries allows, is rejected up front instead of failing the run.
  Status validate() const { return validate(options_); }
  static Status validate(const SolveOptions& options);

  /// Theorem-1 dispatch predicate for this solver's options: true if the §5
  /// low-degree path applies (Delta within dispatch_degree_bound and the
  /// 2-hop structures fit in S). Throws OptionsError on invalid options.
  bool low_degree_regime(const graph::Graph& g) const;

  /// The dispatch threshold itself: the largest max-degree for which the
  /// low-degree path is considered on an n-node graph
  /// (dispatch_slack * n^{eps/8} + dispatch_slack).
  double dispatch_degree_bound(std::uint64_t n) const;

  /// Deterministic maximal independent set (Theorem 1).
  /// Throws OptionsError if validate() fails.
  MisSolution mis(const graph::Graph& g) const;

  /// Deterministic maximal matching (Theorem 1).
  /// Throws OptionsError if validate() fails.
  MatchingSolution maximal_matching(const graph::Graph& g) const;

  /// Storage-seam entry points: solve the graph owned by `storage`, attach
  /// the backend to the pipeline's cluster (mpc::Cluster::set_storage), and
  /// export its residency stats into the registry's kHost section (so
  /// --metrics-out and benches see storage/bytes_mapped etc.). The answer
  /// and every kModel byte are identical to the plain-graph overloads.
  ///
  /// When the backend was opened with VerifyMode::kParanoid, or certify is
  /// on, the attach runs a pre-solve integrity gate
  /// (Storage::verify_integrity — retries and quarantine engaged): a backend
  /// that still fails surfaces as CertificationError (failed
  /// storage_integrity claim) in checked mode, else as mpc::StorageError —
  /// before the pipeline ever dereferences a corrupt adjacency. The report's
  /// recovery.storage sub-block carries the backend's cumulative recovery
  /// ledger.
  MisSolution mis(const mpc::Storage& storage) const;
  MatchingSolution maximal_matching(const mpc::Storage& storage) const;

  /// Open the backend selected by options().storage: kMemory parses
  /// `input_path` as a text edge list, kMmap maps storage.shard_dir
  /// (ignoring `input_path`). Throws OptionsError on invalid storage
  /// options, ParseError on malformed input.
  std::unique_ptr<mpc::Storage> open_storage(
      const std::string& input_path,
      const graph::EdgeListLimits& limits = {}) const;

  /// The host executor the solve entry points will use (threads resolved:
  /// 0 -> hardware concurrency). Exposed so callers can reuse it for
  /// adjacent work (graph stats, custom objectives).
  exec::Executor make_executor() const;

  /// The cluster this solver would provision for an (n, m)-size input:
  /// geometry auto-sized from eps/space_headroom, overrides applied, the
  /// executor and fault plan installed. This is the supported way for
  /// benches and tests to obtain a cluster (hand-building mpc::ClusterConfig
  /// is deprecated); attach a trace session to the placed instance
  /// afterwards if needed. Throws OptionsError on invalid options.
  mpc::Cluster cluster(std::uint64_t n, std::uint64_t m) const;

  /// The raw geometry cluster(n, m) would use (after overrides).
  mpc::ClusterConfig cluster_config(std::uint64_t n, std::uint64_t m) const;

  /// The typed, versioned report for a finished solve (schema_version,
  /// algorithm, metrics, recovery ledger, certificate).
  Report report(const SolveReport& solve_report) const;

  /// Thin wrapper: to_json(report(solve_report)).dump().
  std::string report_json(const SolveReport& solve_report) const;

  /// The certificate of the most recent solve on this Solver instance
  /// (empty when certify == kOff or before the first solve). Also embedded
  /// in the SolveReport of the answer it certifies. Like the solve entry
  /// points themselves, not synchronized: concurrent solves on one Solver
  /// instance race on this slot.
  const verify::Certificate& certificate() const;

  /// The metrics-registry delta of the most recent solve on this Solver
  /// instance (empty before the first solve): counters/histograms are this
  /// solve's contribution to obs::MetricsRegistry::global(), gauges are the
  /// post-solve sample. Also embedded in SolveReport::registry. Same
  /// synchronization caveat as certificate().
  const obs::MetricsSnapshot& metrics_snapshot() const;

  /// OpenMetrics v1.0 text exposition of the most recent solve's registry
  /// delta (obs::to_openmetrics over metrics_snapshot()): what a scrape
  /// endpoint would serve. Empty-registry exposition ("# EOF\n" only)
  /// before the first solve.
  std::string metrics_openmetrics() const;

 private:
  void require_valid() const;

  /// Emit solve_started for `algorithm` over `g` on the attached bus.
  void emit_solve_started(const char* algorithm, const graph::Graph& g) const;

  /// Emit solve_finished and fill the report's events summary.
  void emit_solve_finished(SolveReport* report) const;

  /// Surface the attached storage backend's recovery ledger as
  /// recovery-section events (retry/quarantine/degradation rungs happen at
  /// open/verify time, before any cluster exists, so they are summarized
  /// here rather than streamed).
  void emit_storage_events(const mpc::Storage& storage) const;

  /// Satellite of the unwind contract: flush and close the event bus (and
  /// finish the trace session) so partially written sinks are never
  /// truncated mid-record when CertificationError/FaultError escapes.
  void flush_observers_on_unwind() const;

  /// The pre-solve integrity gate for the storage overloads (see their doc
  /// comment). Stashes the storage_integrity claim for certify_common.
  void storage_gate(const mpc::Storage& storage) const;

  /// The storage_integrity claim certify_common appends: the gate's stashed
  /// result when a backend is attached, else a fresh skipped claim.
  verify::ClaimResult storage_claim() const;

  /// Run the shared claim set (space accounting + full-mode pipeline claims
  /// + replay identity) and append to `answer_claims`.
  verify::Certificate certify_common(
      const graph::Graph& g, const SolveReport& report,
      std::vector<verify::ClaimResult> answer_claims,
      const std::function<bool(std::uint64_t*, std::uint64_t*, std::string*)>&
          replay) const;

  /// Emit the verify/certify span, embed the certificate in the report,
  /// remember it, and throw CertificationError if any claim failed.
  void record_certificate(verify::Certificate certificate,
                          SolveReport* report) const;

  void finalize_mis_certificate(const graph::Graph& g,
                                MisSolution* solution) const;
  void finalize_matching_certificate(const graph::Graph& g,
                                     MatchingSolution* solution) const;

  /// Export the pipeline's metrics into the global registry, sample the
  /// host gauges, and store the per-solve delta against `before` into the
  /// report and the metrics_snapshot() slot. Called after the pipeline and
  /// before certification, so a certify=full replay solve cannot leak its
  /// registry increments into this report.
  void capture_registry_delta(const obs::MetricsSnapshot& before,
                              SolveReport* report) const;

  SolveOptions options_;
  /// Storage backend attached for the duration of a storage-overload solve
  /// (mutable output-slot style, like the certificate): pipeline configs
  /// pick it up so the cluster sees its residency seam, and
  /// capture_registry_delta exports its host stats.
  mutable const mpc::Storage* active_storage_ = nullptr;
  /// The attached backend's integrity verdict from the pre-solve gate
  /// (meaningful only while active_storage_ is set).
  mutable verify::ClaimResult storage_integrity_;
  /// The last solve's certificate (see certificate()). Mutable: solves are
  /// logically const — the certificate is an output slot, not solver state.
  mutable verify::Certificate last_certificate_;
  /// The last solve's registry delta (see metrics_snapshot()).
  mutable obs::MetricsSnapshot last_snapshot_;
};

}  // namespace dmpc
