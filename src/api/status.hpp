// Typed option-validation results for the public API.
//
// Historically, bad options (eps = 0, negative headroom, a typo'd trace
// format) surfaced as DMPC_CHECK failures thrown from the middle of a
// pipeline — correct but hostile: the caller gets a file:line assertion for
// what is really *their* input error. The Solver facade validates options up
// front and reports problems as a Status with a stable code, so callers can
// branch on the failure class and print the human message.
#pragma once

#include <string>
#include <utility>

#include "support/check.hpp"

namespace dmpc {

/// Stable identifier for each validation rule (one per rejectable option).
enum class StatusCode {
  kOk = 0,
  kInvalidEps,           ///< eps must satisfy 0 < eps < 1.
  kInvalidSpaceHeadroom, ///< space_headroom must be > 0.
  kInvalidDispatchSlack, ///< dispatch_slack must be > 0.
  kInvalidThreads,       ///< threads must be <= kMaxThreads.
  kInvalidAlgorithm,     ///< unknown algorithm name (CLI parsing).
  kInvalidTraceFormat,   ///< trace sink set but format not jsonl|chrome.
  kInvalidClusterOverrides, ///< machine_space override must be 0 or >= 2.
  kInvalidFaultPlan,     ///< structurally malformed fault schedule.
  kInvalidIoFaultPlan,   ///< structurally malformed host-I/O fault schedule.
  kInvalidRetryBudget,   ///< max_retries/backoff_rounds out of range.
  kUnrecoverableFault,   ///< plan provably exceeds the recovery policy.
  kInvalidCertifyMode,   ///< unknown certify mode name (CLI parsing).
  kIoError,              ///< cannot open an output file (--metrics-out, --trace).
  kInvalidStorage,       ///< storage backend/shard_dir combination invalid.
  kInvalidEventFilter,   ///< malformed --events-filter category list.
  kInvalidMetricsFormat, ///< metrics format not json|openmetrics.
};

/// Short stable name for a code ("invalid_eps", ...), for logs and tests.
const char* status_code_name(StatusCode code);

/// The result of validating options: kOk, or a code plus a human-readable
/// message naming the offending option and the accepted range.
class Status {
 public:
  Status() = default;  ///< OK.

  static Status error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Thrown by Solver entry points invoked with invalid options. Derives from
/// CheckFailure so pre-Solver call sites that catch CheckFailure keep
/// working; new code should catch OptionsError and inspect status().
class OptionsError : public CheckFailure {
 public:
  explicit OptionsError(Status status)
      : CheckFailure("invalid options — " + status.to_string()),
        status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace dmpc
