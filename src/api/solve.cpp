// Definitions for the deprecated free-function shim (api/solve.hpp). The
// attribute fires at call sites; defining the functions is not a "use".
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "api/solve.hpp"

#include "api/solver.hpp"

namespace dmpc {

bool low_degree_regime(const graph::Graph& g, const SolveOptions& options) {
  return Solver(options).low_degree_regime(g);
}

MisSolution solve_mis(const graph::Graph& g, const SolveOptions& options) {
  return Solver(options).mis(g);
}

MatchingSolution solve_maximal_matching(const graph::Graph& g,
                                        const SolveOptions& options) {
  return Solver(options).maximal_matching(g);
}

}  // namespace dmpc

#pragma GCC diagnostic pop
