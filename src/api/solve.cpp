#include "api/solve.hpp"

#include <cmath>

#include "lowdeg/lowdeg_solver.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "support/check.hpp"

namespace dmpc {

bool low_degree_regime(const graph::Graph& g, const SolveOptions& options) {
  if (g.num_nodes() < 2) return true;
  const double delta = options.eps / 8.0;
  const double n = static_cast<double>(g.num_nodes());
  const double bound = std::pow(n, delta);
  // §5 needs Delta = O(n^{delta}); additionally, at finite n the pipeline's
  // binding constraint is the 2-hop space check (Delta^2 words on one
  // machine, and the matching path runs on the line graph whose degree is
  // ~2 Delta), so require that to fit in S with room to spare.
  const double s_budget = options.space_headroom * std::pow(n, options.eps);
  const double d = static_cast<double>(g.max_degree());
  const double line_degree = 2.0 * d;
  return d <= 4.0 * bound + 4.0 && line_degree * line_degree <= s_budget;
}

MisSolution solve_mis(const graph::Graph& g, const SolveOptions& options) {
  MisSolution solution;
  const bool lowdeg =
      options.algorithm == Algorithm::kLowDegree ||
      (options.algorithm == Algorithm::kAuto && low_degree_regime(g, options));
  if (lowdeg) {
    lowdeg::LowDegConfig config;
    config.trace = options.trace;
    config.eps = options.eps;
    config.space_headroom = options.space_headroom;
    auto result = lowdeg::lowdeg_mis(g, config);
    solution.in_set = std::move(result.in_set);
    solution.report.algorithm_used = "lowdeg";
    solution.report.iterations = result.stages;
    solution.report.metrics = result.metrics;
  } else {
    mis::DetMisConfig config;
    config.trace = options.trace;
    config.eps = options.eps;
    config.space_headroom = options.space_headroom;
    auto result = mis::det_mis(g, config);
    solution.in_set = std::move(result.in_set);
    solution.report.algorithm_used = "sparsification";
    solution.report.iterations = result.iterations;
    solution.report.metrics = result.metrics;
  }
  return solution;
}

MatchingSolution solve_maximal_matching(const graph::Graph& g,
                                        const SolveOptions& options) {
  MatchingSolution solution;
  const bool lowdeg =
      options.algorithm == Algorithm::kLowDegree ||
      (options.algorithm == Algorithm::kAuto && low_degree_regime(g, options));
  if (lowdeg) {
    lowdeg::LowDegConfig config;
    config.trace = options.trace;
    config.eps = options.eps;
    config.space_headroom = options.space_headroom;
    auto result = lowdeg::lowdeg_matching(g, config);
    solution.matching = std::move(result.matching);
    solution.report.algorithm_used = "lowdeg";
    solution.report.iterations = result.line_mis.stages;
    solution.report.metrics = result.line_mis.metrics;
  } else {
    matching::DetMatchingConfig config;
    config.trace = options.trace;
    config.eps = options.eps;
    config.space_headroom = options.space_headroom;
    auto result = matching::det_maximal_matching(g, config);
    solution.matching = std::move(result.matching);
    solution.report.algorithm_used = "sparsification";
    solution.report.iterations = result.iterations;
    solution.report.metrics = result.metrics;
  }
  return solution;
}

}  // namespace dmpc
