#include "api/cli_options.hpp"

#include <cstdint>

#include "support/parse_error.hpp"

namespace dmpc {
namespace {

// Bounds-checked narrowing for flag values: the ParseError names the flag so
// the diagnostic is actionable without a stack trace.
std::uint32_t require_u32_flag(const ArgParser& args, const std::string& key,
                               std::uint32_t fallback) {
  const std::int64_t value =
      args.require_int(key, static_cast<std::int64_t>(fallback));
  if (value < 0 || value > static_cast<std::int64_t>(UINT32_MAX)) {
    throw ParseError(ParseErrorCode::kOutOfRange,
                     "value of --" + key + " must be in [0, 2^32)", 0, 0,
                     std::to_string(value));
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

Algorithm parse_algorithm(const std::string& name) {
  if (name == "auto") return Algorithm::kAuto;
  if (name == "sparse") return Algorithm::kSparsification;
  if (name == "lowdeg") return Algorithm::kLowDegree;
  throw OptionsError(Status::error(
      StatusCode::kInvalidAlgorithm,
      "unknown algorithm '" + name + "' (expected auto|sparse|lowdeg)"));
}

verify::CertifyMode parse_certify_mode(const std::string& name) {
  if (name == "off") return verify::CertifyMode::kOff;
  if (name == "answer") return verify::CertifyMode::kAnswer;
  if (name == "full") return verify::CertifyMode::kFull;
  throw OptionsError(Status::error(
      StatusCode::kInvalidCertifyMode,
      "unknown certify mode '" + name + "' (expected off|answer|full)"));
}

mpc::CheckpointMode parse_checkpoint_mode(const std::string& name) {
  if (name == "round") return mpc::CheckpointMode::kRound;
  if (name == "phase") return mpc::CheckpointMode::kPhase;
  if (name == "off") return mpc::CheckpointMode::kOff;
  throw OptionsError(Status::error(
      StatusCode::kInvalidRetryBudget,
      "unknown checkpoint mode '" + name + "' (expected round|phase|off)"));
}

mpc::StorageBackend parse_storage_backend(const std::string& name) {
  if (name == "memory") return mpc::StorageBackend::kMemory;
  if (name == "mmap") return mpc::StorageBackend::kMmap;
  throw OptionsError(Status::error(
      StatusCode::kInvalidStorage,
      "unknown storage backend '" + name + "' (expected memory|mmap)"));
}

mpc::VerifyMode parse_verify_mode(const std::string& name) {
  if (name == "off") return mpc::VerifyMode::kOff;
  if (name == "open") return mpc::VerifyMode::kOpen;
  if (name == "paranoid") return mpc::VerifyMode::kParanoid;
  throw OptionsError(Status::error(
      StatusCode::kInvalidStorage,
      "unknown storage verify mode '" + name +
          "' (expected off|open|paranoid)"));
}

mpc::FallbackMode parse_fallback_mode(const std::string& name) {
  if (name == "none") return mpc::FallbackMode::kNone;
  if (name == "memory") return mpc::FallbackMode::kMemory;
  throw OptionsError(Status::error(
      StatusCode::kInvalidStorage,
      "unknown storage fallback mode '" + name + "' (expected none|memory)"));
}

MetricsFormat parse_metrics_format(const std::string& name) {
  if (name == "json") return MetricsFormat::kJson;
  if (name == "openmetrics") return MetricsFormat::kOpenMetrics;
  throw OptionsError(Status::error(
      StatusCode::kInvalidMetricsFormat,
      "unknown metrics format '" + name + "' (expected json|openmetrics)"));
}

CliSolveOptions parse_solve_options(const ArgParser& args) {
  CliSolveOptions cli;
  SolveOptions& options = cli.options;
  options.eps = args.require_double("eps", options.eps);
  options.threads = require_u32_flag(args, "threads", options.threads);
  options.algorithm = parse_algorithm(args.get("algorithm", "auto"));
  options.certify = parse_certify_mode(args.get("certify", "off"));
  options.recovery.max_retries =
      require_u32_flag(args, "max-retries", options.recovery.max_retries);
  options.recovery.checkpoint =
      parse_checkpoint_mode(args.get("checkpoint", "round"));
  options.profile = args.has("profile");
  options.storage.backend = parse_storage_backend(args.get("storage", "memory"));
  options.storage.shard_dir = args.get("shard-dir", "");
  options.storage.verify =
      parse_verify_mode(args.get("storage-verify", "off"));
  options.storage.fallback =
      parse_fallback_mode(args.get("storage-fallback", "none"));
  cli.fault_plan_path = args.get("fault-plan", "");
  cli.io_fault_plan_path = args.get("io-fault-plan", "");
  cli.metrics_out_path = args.get("metrics-out", "");
  cli.metrics_format = parse_metrics_format(args.get("metrics-format", "json"));
  cli.events_path = args.get("events", "");
  cli.events_filter = obs::parse_event_filter(args.get("events-filter", "all"));
  cli.progress = args.has("progress");
  cli.host_sample_ms = require_u32_flag(args, "host-sample-ms", 0);
  return cli;
}

}  // namespace dmpc
