// Shared parsing of solver-related command-line options.
//
// One implementation serves the dmpc CLI, the examples, and the fuzzing
// harness (tools/fuzz/), so the exact surface fuzzed is the surface shipped:
// every flag value is parsed strictly — a malformed number, an unknown
// enum name, or an oversized value raises a typed recoverable error
// (ParseError for token-level defects, OptionsError with a StatusCode for
// unknown mode names), never a DMPC_CHECK abort.
#pragma once

#include <cstdint>
#include <string>

#include "api/solve_types.hpp"
#include "api/status.hpp"
#include "obs/events.hpp"
#include "support/options.hpp"

namespace dmpc {

/// --metrics-format=json|openmetrics. Selects the --metrics-out encoding.
enum class MetricsFormat : std::uint8_t { kJson = 0, kOpenMetrics = 1 };

/// --algorithm=auto|sparse|lowdeg. Throws OptionsError(kInvalidAlgorithm).
Algorithm parse_algorithm(const std::string& name);

/// --certify=off|answer|full. Throws OptionsError(kInvalidCertifyMode).
verify::CertifyMode parse_certify_mode(const std::string& name);

/// --checkpoint=round|phase|off. Throws OptionsError(kInvalidRetryBudget).
mpc::CheckpointMode parse_checkpoint_mode(const std::string& name);

/// --storage=memory|mmap. Throws OptionsError(kInvalidStorage).
mpc::StorageBackend parse_storage_backend(const std::string& name);

/// --storage-verify=off|open|paranoid. Throws OptionsError(kInvalidStorage).
mpc::VerifyMode parse_verify_mode(const std::string& name);

/// --storage-fallback=none|memory. Throws OptionsError(kInvalidStorage).
mpc::FallbackMode parse_fallback_mode(const std::string& name);

/// --metrics-format=json|openmetrics. Throws
/// OptionsError(kInvalidMetricsFormat).
MetricsFormat parse_metrics_format(const std::string& name);

/// SolveOptions parsed from flags, plus the side-channels the caller must
/// resolve itself (file loading stays out of this layer so the fuzz harness
/// can drive it hermetically).
struct CliSolveOptions {
  SolveOptions options;
  /// --fault-plan=<path>; empty = no plan. The caller loads the file and
  /// applies mpc::FaultPlan::parse(text) to options.faults.
  std::string fault_plan_path;
  /// --io-fault-plan=<path>; empty = no plan. The caller loads the file and
  /// applies mpc::IoFaultPlan::parse(text) to options.io_faults.
  std::string io_fault_plan_path;
  /// --metrics-out=<path>; empty = no metrics dump. After a successful
  /// solve the caller writes the solve's full registry snapshot delta
  /// (all sections, grouped) there as JSON.
  std::string metrics_out_path;
  /// --metrics-format=json|openmetrics; picks the --metrics-out encoding
  /// (JSON document vs OpenMetrics v1.0 text exposition).
  MetricsFormat metrics_format = MetricsFormat::kJson;
  /// --events=<path>; empty = no event stream. The caller opens the file
  /// (typed kIoError on failure), attaches a JsonlEventSink to an EventBus,
  /// and wires the bus into options.events.
  std::string events_path;
  /// --events-filter=<categories>; pre-parsed so the fuzzed surface covers
  /// the filter grammar. Default passes every event.
  obs::EventFilter events_filter;
  /// --progress: mirror lifecycle events as a throttled human stderr line.
  bool progress = false;
  /// --host-sample-ms=<ms>; 0 = no background host sampler. When > 0 the
  /// caller runs an obs::HostSampler at this cadence around the solve and
  /// embeds its ring in the --metrics-out document as "host_samples".
  std::uint64_t host_sample_ms = 0;
};

/// Parse --eps, --threads, --algorithm, --certify, --max-retries,
/// --checkpoint, --profile, --fault-plan, --io-fault-plan, --metrics-out,
/// --metrics-format, --storage, --shard-dir, --storage-verify,
/// --storage-fallback, --events, --events-filter, --progress,
/// --host-sample-ms. Numeric
/// values are parsed strictly (ParseError on
/// garbage/overflow); enum values raise OptionsError with the matching
/// StatusCode. Flags not present keep SolveOptions defaults. Consistency of
/// --storage/--shard-dir is left to Solver::validate (kInvalidStorage), so
/// the CLI and library reject the same inputs with the same code.
CliSolveOptions parse_solve_options(const ArgParser& args);

}  // namespace dmpc
