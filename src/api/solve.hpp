// Compatibility shim — deprecated free-function entry points.
//
// The one-shot wrappers below predate dmpc::Solver (api/solver.hpp), which
// is the supported API: it validates options once with typed Status codes,
// is reusable across solves, and exposes the cluster/report plumbing the
// wrappers hide. The option/report types formerly declared here moved to
// api/solve_types.hpp; include that (or api/solver.hpp) directly.
//
// This header is kept only so downstream code compiles during the migration
// window and WILL BE REMOVED in a future release. New code must use
// dmpc::Solver.
#pragma once

#include "api/solve_types.hpp"
#include "graph/graph.hpp"

namespace dmpc {

/// Deprecated: use Solver(options).mis(g).
[[deprecated("use dmpc::Solver::mis (api/solver.hpp); this shim will be "
             "removed")]]
MisSolution solve_mis(const graph::Graph& g, const SolveOptions& options = {});

/// Deprecated: use Solver(options).maximal_matching(g).
[[deprecated("use dmpc::Solver::maximal_matching (api/solver.hpp); this shim "
             "will be removed")]]
MatchingSolution solve_maximal_matching(const graph::Graph& g,
                                        const SolveOptions& options = {});

/// Deprecated: use Solver(options).low_degree_regime(g).
[[deprecated("use dmpc::Solver::low_degree_regime (api/solver.hpp); this "
             "shim will be removed")]]
bool low_degree_regime(const graph::Graph& g, const SolveOptions& options);

}  // namespace dmpc
