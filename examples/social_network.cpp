// Scenario: influence-free seeding on a social network.
//
// A power-law "follower" graph models a social network; an MIS is a maximal
// set of users no two of whom are connected — e.g. a spam-resistant seed set
// for A/B experiments where adjacent users would contaminate each other.
// This is the heterogeneous-degree workload that exercises the paper's
// degree classes C_i: hubs and leaf users land in different classes and the
// class with the most incident edges drives each iteration.
//
//   ./social_network [--n=20000] [--m=80000] [--beta=2.3]
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "mis/det_mis.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const auto n = static_cast<dmpc::graph::NodeId>(args.get_int("n", 20000));
  const auto m = static_cast<dmpc::graph::EdgeId>(args.get_int("m", 80000));
  const double beta = args.get_double("beta", 2.3);

  std::printf("== social network seeding: power-law(n=%u, m~%llu, beta=%.1f) ==\n",
              n, static_cast<unsigned long long>(m), beta);
  const auto g = dmpc::graph::power_law(n, m, beta, /*seed=*/42);
  std::printf("graph: %llu edges, max degree %u\n",
              static_cast<unsigned long long>(g.num_edges()), g.max_degree());

  dmpc::mis::DetMisConfig config;
  const auto result = dmpc::mis::det_mis(g, config);

  std::size_t seeds = 0;
  for (bool b : result.in_set) seeds += b;
  std::printf("seed set: %zu users (maximal independent: %s)\n", seeds,
              dmpc::graph::is_maximal_independent_set(g, result.in_set)
                  ? "yes"
                  : "NO");
  std::printf("iterations=%llu, MPC rounds=%llu\n",
              static_cast<unsigned long long>(result.iterations),
              static_cast<unsigned long long>(result.metrics.rounds()));

  std::printf("\nper-iteration progress (class = degree band chosen by "
              "Corollary 16):\n");
  std::printf("%5s %8s %12s %12s %9s\n", "iter", "class", "|E| before",
              "|E| after", "removed");
  for (const auto& r : result.reports) {
    std::printf("%5llu %8u %12llu %12llu %8.1f%%\n",
                static_cast<unsigned long long>(r.iteration), r.cls,
                static_cast<unsigned long long>(r.edges_before),
                static_cast<unsigned long long>(r.edges_after),
                100.0 * r.progress_fraction);
  }
  return 0;
}
