// Scenario: the Lemma-4 toolbox as a user-facing library.
//
// A log-analytics shard job: per-shard event counts are prefix-summed to
// assign global output offsets, and event keys are sorted — both as *real*
// message-passing MPC computations where every word moves through the
// router and every machine obeys its S-word budget. Prints the per-phase
// round bill so the tree structure is visible.
//
//   ./lowlevel_primitives [--events=20000] [--space=512]
#include <algorithm>
#include <cstdio>

#include "mpc/cluster.hpp"
#include "mpc/lowlevel.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const auto events = static_cast<std::size_t>(args.get_int("events", 20000));
  const auto space = static_cast<std::uint64_t>(args.get_int("space", 512));

  dmpc::mpc::ClusterConfig config;
  config.machine_space = space;
  config.num_machines = 1 << 16;

  dmpc::Rng rng(11);
  std::printf("== Lemma-4 primitives, message-passing level ==\n");
  std::printf("S = %llu words/machine\n\n", (unsigned long long)space);

  // --- Prefix sums: shard sizes -> global output offsets. ---
  {
    std::vector<dmpc::mpc::Word> shard_sizes(events / 100 + 1);
    for (auto& s : shard_sizes) s = rng.next_below(200);
    dmpc::mpc::Cluster cluster(config);
    const auto offsets = dmpc::mpc::lowlevel::prefix_sum(cluster, shard_sizes);
    std::printf("prefix sums over %zu shard sizes:\n", shard_sizes.size());
    std::printf("  machines=%llu rounds=%llu peak=%llu comm=%llu words\n",
                (unsigned long long)cluster.low_level_machines(),
                (unsigned long long)cluster.metrics().rounds(),
                (unsigned long long)cluster.metrics().peak_machine_load(),
                (unsigned long long)cluster.metrics().total_communication());
    // Spot check.
    dmpc::mpc::Word acc = 0;
    bool ok = true;
    for (std::size_t i = 0; i < shard_sizes.size(); ++i) {
      ok = ok && offsets[i] == acc;
      acc += shard_sizes[i];
    }
    std::printf("  verified against sequential scan: %s\n\n",
                ok ? "yes" : "NO (bug!)");
  }

  // --- Distributed sample sort: event keys. ---
  {
    // Keys within the sort's single-level gather capacity: n <= ~3 S^2/64.
    const auto capacity =
        static_cast<std::size_t>(3 * space * space / 64);
    const std::size_t count = std::min(events, capacity);
    if (count < events) {
      std::printf("(clamping sort to %zu keys: single-level splitter "
                  "gather needs n <= 3S^2/64)\n",
                  count);
    }
    std::vector<dmpc::mpc::Word> keys(count);
    for (auto& k : keys) k = rng.next_below(1u << 30);
    dmpc::mpc::Cluster cluster(config);
    const auto sorted = dmpc::mpc::lowlevel::sort(cluster, keys);
    std::printf("sample sort over %zu keys:\n", count);
    std::printf("  machines=%llu rounds=%llu peak=%llu/%llu words\n",
                (unsigned long long)cluster.low_level_machines(),
                (unsigned long long)cluster.metrics().rounds(),
                (unsigned long long)cluster.metrics().peak_machine_load(),
                (unsigned long long)space);
    std::printf("  sorted: %s\n", std::is_sorted(sorted.begin(), sorted.end())
                                      ? "yes"
                                      : "NO (bug!)");
    std::printf("  rounds by phase:\n");
    for (const auto& [label, rounds] : cluster.metrics().rounds_by_label()) {
      std::printf("    %-28s %6llu\n", label.c_str(),
                  (unsigned long long)rounds);
    }
  }
  return 0;
}
