// Scenario: inspect the MPC cost model itself.
//
// Runs the deterministic MIS pipeline at several (n, eps) points and prints
// the round budget broken down by phase label, the peak per-machine load
// against the S = n^eps budget, and the total communication — the three
// quantities Theorems 1/7/14 bound. Useful to see where the rounds go
// (good-node selection vs sparsification vs selection vs gathers).
//
//   ./cluster_inspector [--n=4096] [--m=24576]
#include <cstdio>

#include "graph/generators.hpp"
#include "mis/det_mis.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const auto n = static_cast<dmpc::graph::NodeId>(args.get_int("n", 4096));
  const auto m = static_cast<dmpc::graph::EdgeId>(args.get_int("m", 24576));
  const auto g = dmpc::graph::gnm(n, m, 5);

  std::printf("== MPC cost inspector: G(n=%u, m=%llu) ==\n", n,
              static_cast<unsigned long long>(m));
  for (const double eps : {0.3, 0.5, 0.7}) {
    dmpc::mis::DetMisConfig config;
    config.eps = eps;
    const auto cc =
        dmpc::mis::cluster_config_for(config, g.num_nodes(), g.num_edges());
    const auto result = dmpc::mis::det_mis(g, config);
    std::printf("\n-- eps=%.1f: S=%llu words, M=%llu machines --\n", eps,
                static_cast<unsigned long long>(cc.machine_space),
                static_cast<unsigned long long>(cc.num_machines));
    std::printf("iterations=%llu  rounds=%llu  peak load=%llu/%llu  "
                "comm=%llu words\n",
                static_cast<unsigned long long>(result.iterations),
                static_cast<unsigned long long>(result.metrics.rounds()),
                static_cast<unsigned long long>(
                    result.metrics.peak_machine_load()),
                static_cast<unsigned long long>(cc.machine_space),
                static_cast<unsigned long long>(
                    result.metrics.total_communication()));
    std::printf("rounds by phase:\n");
    for (const auto& [label, rounds] : result.metrics.rounds_by_label()) {
      std::printf("  %-28s %8llu\n", label.c_str(),
                  static_cast<unsigned long long>(rounds));
    }
  }
  return 0;
}
