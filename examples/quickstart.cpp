// Quickstart: build a graph, run the deterministic MIS and maximal matching
// solvers through the dmpc::Solver facade, inspect the MPC cost report.
//
//   ./quickstart [--n=2000] [--m=12000] [--eps=0.5] [--seed=1] [--threads=1]
#include <cstdio>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const auto n = static_cast<dmpc::graph::NodeId>(args.get_int("n", 2000));
  const auto m = static_cast<dmpc::graph::EdgeId>(args.get_int("m", 12000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  dmpc::SolveOptions options;
  options.eps = args.get_double("eps", 0.5);
  options.threads = static_cast<std::uint32_t>(args.get_int("threads", 1));

  // Validate once up front: bad options come back as a typed Status instead
  // of an assertion out of the middle of a pipeline.
  const dmpc::Solver solver(options);
  if (const auto status = solver.validate(); !status.ok()) {
    std::fprintf(stderr, "invalid options: %s\n", status.to_string().c_str());
    return 2;
  }

  std::printf("== dmpc quickstart: G(n=%u, m=%llu), eps=%.2f, threads=%u ==\n",
              n, static_cast<unsigned long long>(m), options.eps,
              options.threads);
  const auto g = dmpc::graph::gnm(n, m, seed);

  // --- Maximal independent set (Theorem 1). ---
  const auto mis = solver.mis(g);
  std::size_t mis_size = 0;
  for (bool b : mis.in_set) mis_size += b;
  std::printf("MIS:      %zu nodes, algorithm=%s, iterations=%llu\n",
              mis_size, mis.report.algorithm_used.c_str(),
              static_cast<unsigned long long>(mis.report.iterations));
  std::printf("          MPC rounds=%llu  peak machine load=%llu words  "
              "communication=%llu words\n",
              static_cast<unsigned long long>(mis.report.metrics.rounds()),
              static_cast<unsigned long long>(
                  mis.report.metrics.peak_machine_load()),
              static_cast<unsigned long long>(
                  mis.report.metrics.total_communication()));
  std::printf("          valid maximal independent set: %s\n",
              dmpc::graph::is_maximal_independent_set(g, mis.in_set)
                  ? "yes"
                  : "NO (bug!)");

  // --- Maximal matching (Theorem 1). ---
  const auto mm = solver.maximal_matching(g);
  std::printf("Matching: %zu edges, algorithm=%s, iterations=%llu\n",
              mm.matching.size(), mm.report.algorithm_used.c_str(),
              static_cast<unsigned long long>(mm.report.iterations));
  std::printf("          MPC rounds=%llu\n",
              static_cast<unsigned long long>(mm.report.metrics.rounds()));
  std::printf("          valid maximal matching: %s\n",
              dmpc::graph::is_maximal_matching(g, mm.matching)
                  ? "yes"
                  : "NO (bug!)");

  // --- Determinism demo: run again (and serially), must be bit-identical
  // regardless of the thread count. ---
  auto serial_options = options;
  serial_options.threads = 1;
  const auto mis2 = dmpc::Solver(serial_options).mis(g);
  std::printf("Determinism: serial re-run identical = %s\n",
              mis2.in_set == mis.in_set ? "yes" : "NO (bug!)");

  // --- Fault tolerance demo: crash a machine and drop a message early in
  // the run. Checkpoint/replay recovers both; the solution is byte-identical
  // to the fault-free run and the recovery ledger records the overhead. ---
  auto faulty_options = options;
  faulty_options.faults.add(
      {dmpc::mpc::FaultKind::kCrash, /*round=*/2, /*machine=*/0});
  faulty_options.faults.add(
      {dmpc::mpc::FaultKind::kDrop, /*round=*/5, /*machine=*/1, /*message=*/0});
  const dmpc::Solver faulty_solver(faulty_options);
  if (const auto status = faulty_solver.validate(); !status.ok()) {
    std::fprintf(stderr, "invalid fault options: %s\n",
                 status.to_string().c_str());
    return 2;
  }
  const auto mis3 = faulty_solver.mis(g);
  std::printf("Faults:   identical under crash+drop plan = %s\n",
              mis3.in_set == mis.in_set ? "yes" : "NO (bug!)");
  std::printf("          faults=%llu retries=%llu replayed_rounds=%llu "
              "checkpoints=%llu\n",
              static_cast<unsigned long long>(
                  mis3.report.recovery.faults_injected),
              static_cast<unsigned long long>(mis3.report.recovery.retries),
              static_cast<unsigned long long>(
                  mis3.report.recovery.replayed_rounds),
              static_cast<unsigned long long>(
                  mis3.report.recovery.checkpoints));
  return 0;
}
