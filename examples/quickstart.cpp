// Quickstart: build a graph, run the deterministic MIS and maximal matching
// solvers, inspect the MPC cost report.
//
//   ./quickstart [--n=2000] [--m=12000] [--eps=0.5] [--seed=1]
#include <cstdio>

#include "api/solve.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const auto n = static_cast<dmpc::graph::NodeId>(args.get_int("n", 2000));
  const auto m = static_cast<dmpc::graph::EdgeId>(args.get_int("m", 12000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  dmpc::SolveOptions options;
  options.eps = args.get_double("eps", 0.5);

  std::printf("== dmpc quickstart: G(n=%u, m=%llu), eps=%.2f ==\n", n,
              static_cast<unsigned long long>(m), options.eps);
  const auto g = dmpc::graph::gnm(n, m, seed);

  // --- Maximal independent set (Theorem 1). ---
  const auto mis = dmpc::solve_mis(g, options);
  std::size_t mis_size = 0;
  for (bool b : mis.in_set) mis_size += b;
  std::printf("MIS:      %zu nodes, algorithm=%s, iterations=%llu\n",
              mis_size, mis.report.algorithm_used.c_str(),
              static_cast<unsigned long long>(mis.report.iterations));
  std::printf("          MPC rounds=%llu  peak machine load=%llu words  "
              "communication=%llu words\n",
              static_cast<unsigned long long>(mis.report.metrics.rounds()),
              static_cast<unsigned long long>(
                  mis.report.metrics.peak_machine_load()),
              static_cast<unsigned long long>(
                  mis.report.metrics.total_communication()));
  std::printf("          valid maximal independent set: %s\n",
              dmpc::graph::is_maximal_independent_set(g, mis.in_set)
                  ? "yes"
                  : "NO (bug!)");

  // --- Maximal matching (Theorem 1). ---
  const auto mm = dmpc::solve_maximal_matching(g, options);
  std::printf("Matching: %zu edges, algorithm=%s, iterations=%llu\n",
              mm.matching.size(), mm.report.algorithm_used.c_str(),
              static_cast<unsigned long long>(mm.report.iterations));
  std::printf("          MPC rounds=%llu\n",
              static_cast<unsigned long long>(mm.report.metrics.rounds()));
  std::printf("          valid maximal matching: %s\n",
              dmpc::graph::is_maximal_matching(g, mm.matching)
                  ? "yes"
                  : "NO (bug!)");

  // --- Determinism demo: run again, must be bit-identical. ---
  const auto mis2 = dmpc::solve_mis(g, options);
  std::printf("Determinism: second run identical = %s\n",
              mis2.in_set == mis.in_set ? "yes" : "NO (bug!)");
  return 0;
}
