// Scenario: link scheduling in a wireless mesh (maximal matching rounds).
//
// Radios are nodes on a grid-with-shortcuts topology; a link can fire only
// if neither endpoint is busy. A maximal matching per time slot is the
// classic interference-free schedule; repeating until every link has fired
// gives a full TDMA frame. Exercises the §3 matching pipeline on a
// structured + random mixture.
//
//   ./wireless_scheduling [--side=40] [--shortcuts=600]
#include <cstdio>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "matching/det_matching.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const auto side = static_cast<dmpc::graph::NodeId>(args.get_int("side", 40));
  const auto shortcuts =
      static_cast<std::uint64_t>(args.get_int("shortcuts", 600));

  // Grid mesh + random long-range shortcut links.
  const auto base = dmpc::graph::grid(side, side);
  dmpc::graph::GraphBuilder b(base.num_nodes());
  for (const auto& e : base.edges()) b.add_edge(e.u, e.v);
  dmpc::Rng rng(99);
  for (std::uint64_t i = 0; i < shortcuts; ++i) {
    b.try_add_edge(
        static_cast<dmpc::graph::NodeId>(rng.next_below(base.num_nodes())),
        static_cast<dmpc::graph::NodeId>(rng.next_below(base.num_nodes())));
  }
  auto g = std::move(b).build();
  std::printf("== wireless mesh: %u radios, %llu links ==\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // TDMA frame: each slot fires a maximal matching of the *unfired* links.
  std::vector<bool> fired(g.num_edges(), false);
  std::uint32_t slot = 0;
  std::uint64_t fired_total = 0;
  std::uint64_t total_rounds = 0;
  while (fired_total < g.num_edges()) {
    dmpc::graph::GraphBuilder slot_builder(g.num_nodes());
    std::vector<dmpc::graph::EdgeId> id_map;
    for (dmpc::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!fired[e]) {
        slot_builder.add_edge(g.edge(e).u, g.edge(e).v);
        id_map.push_back(e);
      }
    }
    const auto residual = std::move(slot_builder).build();
    dmpc::matching::DetMatchingConfig config;
    const auto mm = dmpc::matching::det_maximal_matching(residual, config);
    total_rounds += mm.metrics.rounds();
    if (!dmpc::graph::is_maximal_matching(residual, mm.matching)) {
      std::printf("BUG: slot %u schedule is not a maximal matching\n", slot);
      return 1;
    }
    for (const auto e : mm.matching) {
      fired[id_map[e]] = true;
      ++fired_total;
    }
    std::printf("slot %3u: %5zu links fired (%llu/%llu total)\n", slot,
                mm.matching.size(),
                static_cast<unsigned long long>(fired_total),
                static_cast<unsigned long long>(g.num_edges()));
    ++slot;
  }
  std::printf("frame complete: %u slots, total MPC rounds %llu\n", slot,
              static_cast<unsigned long long>(total_rounds));
  return 0;
}
