// Scenario: conflict-graph scheduling (register-allocation flavored).
//
// Virtual registers whose live ranges overlap cannot share a physical
// register. Repeatedly extracting an MIS of the interference graph peels
// off one "color class" per round — each class is a set of registers that
// can share one physical register. Interference graphs are low-degree in
// practice, so this exercises the §5 O(log Delta + log log n) pipeline.
//
//   ./register_allocation [--ranges=5000] [--overlap=6]
#include <cstdio>
#include <vector>

#include "graph/builder.hpp"
#include "graph/validate.hpp"
#include "lowdeg/lowdeg_solver.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

namespace {

/// Random interval graph with bounded pointwise overlap: each live range is
/// [start, start + len); two ranges interfere iff they intersect.
dmpc::graph::Graph interference_graph(std::uint32_t ranges,
                                      std::uint32_t max_overlap,
                                      std::uint64_t seed) {
  dmpc::Rng rng(seed);
  const std::uint64_t horizon = 16ULL * ranges / max_overlap + 16;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> iv(ranges);
  for (auto& [s, e] : iv) {
    s = rng.next_below(horizon);
    e = s + 1 + rng.next_below(12);
  }
  dmpc::graph::GraphBuilder b(ranges);
  // Sweep-line join: sort by start, connect to active overlapping ranges.
  std::vector<std::uint32_t> order(ranges);
  for (std::uint32_t i = 0; i < ranges; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](auto a, auto c) {
    return iv[a].first < iv[c].first;
  });
  std::vector<std::uint32_t> active;
  for (std::uint32_t idx : order) {
    std::erase_if(active,
                  [&](std::uint32_t j) { return iv[j].second <= iv[idx].first; });
    for (std::uint32_t j : active) b.add_edge(idx, j);
    active.push_back(idx);
  }
  return std::move(b).build();
}

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const auto ranges =
      static_cast<std::uint32_t>(args.get_int("ranges", 5000));
  const auto overlap =
      static_cast<std::uint32_t>(args.get_int("overlap", 6));

  auto g = interference_graph(ranges, overlap, 7);
  std::printf("== register allocation: %u live ranges, %llu conflicts, "
              "max degree %u ==\n",
              ranges, static_cast<unsigned long long>(g.num_edges()),
              g.max_degree());

  // Peel MIS classes until every register is assigned.
  std::vector<std::uint32_t> reg_of(ranges, UINT32_MAX);
  std::vector<bool> remaining(ranges, true);
  std::uint32_t phys = 0;
  std::uint64_t total_rounds = 0;
  while (true) {
    // Build the residual interference graph.
    dmpc::graph::GraphBuilder b(ranges);
    bool any = false;
    for (const auto& e : g.edges()) {
      if (remaining[e.u] && remaining[e.v]) b.add_edge(e.u, e.v);
    }
    for (std::uint32_t v = 0; v < ranges; ++v) any |= remaining[v];
    if (!any) break;
    const auto residual = std::move(b).build();

    dmpc::lowdeg::LowDegConfig config;
    const auto mis = dmpc::lowdeg::lowdeg_mis(residual, config);
    total_rounds += mis.metrics.rounds();
    std::uint32_t assigned = 0;
    for (std::uint32_t v = 0; v < ranges; ++v) {
      if (remaining[v] && mis.in_set[v]) {
        reg_of[v] = phys;
        remaining[v] = false;
        ++assigned;
      }
    }
    std::printf("physical register r%u <- %u ranges (lowdeg stages=%llu)\n",
                phys, assigned,
                static_cast<unsigned long long>(mis.stages));
    ++phys;
  }

  // Verify: no interfering pair shares a register.
  bool ok = true;
  for (const auto& e : g.edges()) {
    if (reg_of[e.u] == reg_of[e.v]) ok = false;
  }
  std::printf("allocation uses %u physical registers; conflict-free: %s; "
              "total MPC rounds %llu\n",
              phys, ok ? "yes" : "NO (bug!)",
              static_cast<unsigned long long>(total_rounds));
  return ok ? 0 : 1;
}
