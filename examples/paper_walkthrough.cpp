// Paper walkthrough: one iteration of the §3 deterministic matching
// pipeline on a small graph, printing every intermediate artifact the paper
// defines — the degree classes C_i, the good set B and E_0 (Corollary 8),
// the sparsification stages with their committed seeds and window
// multipliers (§3.2), and the Lemma-13 selection. Read it next to the paper.
//
//   ./paper_walkthrough [--n=512] [--m=8192]
#include <cstdio>

#include "graph/generators.hpp"
#include "matching/det_matching.hpp"
#include "mpc/cluster.hpp"
#include "sparsify/degree_classes.hpp"
#include "sparsify/edge_sparsifier.hpp"
#include "sparsify/good_nodes.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const auto n = static_cast<dmpc::graph::NodeId>(args.get_int("n", 512));
  const auto m = static_cast<dmpc::graph::EdgeId>(args.get_int("m", 8192));
  const auto g = dmpc::graph::gnm(n, m, 7);

  dmpc::matching::DetMatchingConfig config;
  const auto params = dmpc::matching::params_for(config, g.num_nodes());
  const auto cluster_config =
      dmpc::matching::cluster_config_for(config, g.num_nodes(), g.num_edges());
  dmpc::mpc::Cluster cluster(cluster_config);

  std::printf("== one §3 iteration on G(n=%u, m=%llu) ==\n", n,
              (unsigned long long)g.num_edges());
  std::printf("model: S = %llu words/machine, M = %llu machines, "
              "delta = 1/%u (n^delta = %.2f)\n\n",
              (unsigned long long)cluster_config.machine_space,
              (unsigned long long)cluster_config.num_machines,
              params.inv_delta, params.pow_nd(1.0));

  // --- Degree classes C_i (§3). ---
  std::vector<bool> alive(g.num_nodes(), true);
  const auto degrees = dmpc::graph::alive_degrees(g, alive);
  const auto classes = dmpc::sparsify::classify(params, degrees);
  std::printf("degree classes C_i = [n^{(i-1)d}, n^{id}) and their degree "
              "mass:\n");
  for (std::uint32_t i = 1; i <= params.inv_delta; ++i) {
    if (classes.degree_mass[i] == 0) continue;
    std::printf("  C_%-2u [%6.1f, %6.1f): mass %llu\n", i,
                params.class_lower(i),
                params.class_lower(i) * params.pow_nd(1.0),
                (unsigned long long)classes.degree_mass[i]);
  }

  // --- Good nodes (Lemma 3 / Corollary 8). ---
  const auto good =
      dmpc::sparsify::select_matching_good_set(cluster, params, g, alive);
  std::uint64_t b_count = 0, e0_count = 0;
  for (bool b : good.in_B) b_count += b;
  for (bool b : good.in_E0) e0_count += b;
  std::printf("\nCorollary 8 picks class i = %u:\n", good.cls);
  std::printf("  |B| = %llu nodes, sum_{v in B} d(v) = %llu "
              "(bound: (delta/2)|E| = %.0f)\n",
              (unsigned long long)b_count,
              (unsigned long long)good.b_degree_mass,
              params.delta() / 2 * static_cast<double>(g.num_edges()));
  std::printf("  |E_0| = %llu edges (union of the X(v) lists)\n",
              (unsigned long long)e0_count);

  // --- Sparsification stages (§3.2). ---
  const auto sparse = dmpc::sparsify::sparsify_edges(cluster, params, g, good,
                                                     config.sparsify);
  std::printf("\n§3.2 sparsification to E* (planned stages: max(0, i-4) = "
              "%u):\n",
              params.stages_for_class(good.cls));
  for (const auto& s : sparse.stages) {
    std::printf("  stage %u: |E| %llu -> %llu, max degree %u, committed "
                "seed %llu after %llu trials (window x%.1f)\n",
                s.stage, (unsigned long long)s.edges_before,
                (unsigned long long)s.edges_after, s.max_degree_after,
                (unsigned long long)s.seed, (unsigned long long)s.trials,
                s.window_multiplier);
  }
  std::printf("  final max degree in E*: %u (cap 2 n^{4 delta} = %llu)\n",
              sparse.max_degree, (unsigned long long)params.degree_cap());

  // --- The full run for comparison. ---
  const auto result = dmpc::matching::det_maximal_matching(g, config);
  std::printf("\nfull run: %llu iterations, %zu matched edges, %llu MPC "
              "rounds, peak load %llu/%llu words\n",
              (unsigned long long)result.iterations, result.matching.size(),
              (unsigned long long)result.metrics.rounds(),
              (unsigned long long)result.metrics.peak_machine_load(),
              (unsigned long long)cluster_config.machine_space);
  std::printf("per-iteration progress (Lemma 13 floor: delta|E|/536):\n");
  for (const auto& r : result.reports) {
    std::printf("  iter %llu: class %u, |E| %llu -> %llu (-%4.1f%%), "
                "%llu pairs, E* max deg %u\n",
                (unsigned long long)r.iteration, r.cls,
                (unsigned long long)r.edges_before,
                (unsigned long long)r.edges_after,
                100.0 * r.progress_fraction,
                (unsigned long long)r.matched_pairs, r.estar_max_degree);
  }
  return 0;
}
