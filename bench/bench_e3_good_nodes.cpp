// E3 — Lemma 3 / Corollaries 8 & 16: the selected good-node class carries at
// least a (delta/2)-fraction of all edge endpoints.
//
// Rows: four graph families x the two selections (matching-side X/B and
// MIS-side A/B_i). Reported: b_mass / |E| against the delta/2 bound.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "mpc/cluster.hpp"
#include "sparsify/good_nodes.hpp"

namespace {

using dmpc::graph::Graph;

Graph family_graph(int family, std::uint64_t scale) {
  switch (family) {
    case 0: return dmpc::graph::gnm(scale, 8 * scale, 31);
    case 1: return dmpc::graph::power_law(scale, 6 * scale, 2.5, 32);
    case 2:
      return dmpc::graph::random_bipartite(scale / 2, scale / 2, 6 * scale, 33);
    default: {
      const auto side = static_cast<dmpc::graph::NodeId>(
          std::max<std::uint64_t>(2, static_cast<std::uint64_t>(
                                         std::sqrt(double(scale)))));
      return dmpc::graph::grid(side, side);
    }
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0: return "gnm";
    case 1: return "power_law";
    case 2: return "bipartite";
    default: return "grid";
  }
}

void BM_GoodNodeMass(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const auto g = family_graph(family, 2048);
  dmpc::sparsify::Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;
  dmpc::mpc::ClusterConfig cc;
  cc.machine_space = 1 << 16;
  cc.num_machines = 1 << 10;
  double mm_frac = 0, mis_frac = 0;
  std::uint32_t mm_cls = 0, mis_cls = 0;
  for (auto _ : state) {
    dmpc::mpc::Cluster cluster(cc);
    std::vector<bool> alive(g.num_nodes(), true);
    const auto mm_good =
        dmpc::sparsify::select_matching_good_set(cluster, params, g, alive);
    const auto mis_good =
        dmpc::sparsify::select_mis_good_set(cluster, params, g, alive);
    mm_frac = static_cast<double>(mm_good.b_degree_mass) /
              static_cast<double>(2 * mm_good.alive_edges);
    mis_frac = static_cast<double>(mis_good.b_degree_mass) /
               static_cast<double>(2 * mis_good.alive_edges);
    mm_cls = mm_good.cls;
    mis_cls = mis_good.cls;
  }
  state.SetLabel(family_name(family));
  state.counters["delta_over_2_bound"] = params.delta() / 2.0;
  state.counters["matching_B_mass_frac"] = mm_frac;
  state.counters["mis_B_mass_frac"] = mis_frac;
  state.counters["matching_class"] = mm_cls;
  state.counters["mis_class"] = mis_cls;
}

}  // namespace

BENCHMARK(BM_GoodNodeMass)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Iterations(1);

BENCHMARK_MAIN();
