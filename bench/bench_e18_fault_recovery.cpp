// E18: fault injection + checkpoint/restart — recovery overhead with
// byte-identical output.
//
// The fault layer (src/mpc/faults.hpp) promises that a solve under any
// admissible FaultPlan produces byte-identical solutions, report JSON
// (modulo the "recovery" counter block), and golden traces vs the fault-free
// run. This bench escalates the fault load on a fixed instance and, for each
// scenario, *asserts* that promise while measuring the wall-clock and
// round-budget overhead the retry engine pays for it.
//
//   ./bench_e18_fault_recovery [--n=512] [--quick] [--json]
//
// Plain executable (not google-benchmark): each scenario prints
//   <scenario>  wall=<ms>(x<slowdown>)  faults=.. retries=.. replayed=..
//   checkpoints=..  identical=yes
// With --json the same data is emitted as a single JSON document (the
// bench/bench_json.hpp envelope) on stdout so CI can archive it next to the
// E17 artifact. A non-identical run or an unexpected FaultError is a
// failure, not a result.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "bench_json.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "mpc/faults.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "support/options.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct RunArtifacts {
  std::vector<bool> in_set;
  std::string report_json;  ///< Recovery block zeroed — the comparable part.
  std::string trace;
  dmpc::mpc::RecoveryStats recovery;
  double ms = 0.0;
};

/// Solve MIS under `faults`, capturing everything the identity contract
/// covers. The report is serialized with the recovery ledger zeroed so the
/// fault-free and faulty JSON are directly comparable.
RunArtifacts run_mis(const dmpc::graph::Graph& g,
                     const dmpc::mpc::FaultPlan& faults,
                     dmpc::mpc::CheckpointMode checkpoint) {
  RunArtifacts out;
  std::ostringstream trace_out;
  dmpc::obs::JsonlTraceSink sink(&trace_out, /*include_wall_time=*/false);
  dmpc::obs::TraceSession session(&sink);
  dmpc::SolveOptions options;
  options.trace = &session;
  options.faults = faults;
  options.recovery.checkpoint = checkpoint;
  const dmpc::Solver solver(options);
  if (const auto status = solver.validate(); !status.ok()) {
    std::fprintf(stderr, "FATAL: inadmissible scenario options: %s\n",
                 status.to_string().c_str());
    std::exit(1);
  }
  const auto t0 = Clock::now();
  const auto solution = solver.mis(g);
  out.ms = ms_since(t0);
  session.finish();
  out.in_set = solution.in_set;
  out.recovery = solution.report.recovery;
  auto comparable = solution.report;
  comparable.recovery = dmpc::mpc::RecoveryStats{};
  out.report_json = to_json(comparable).dump();
  out.trace = trace_out.str();
  return out;
}

struct Scenario {
  std::string name;
  dmpc::mpc::FaultPlan faults;
  dmpc::mpc::CheckpointMode checkpoint = dmpc::mpc::CheckpointMode::kRound;
};

/// Spread `count` events of `kind` evenly across the logical round span of
/// the fault-free run so every pipeline phase sees some fault pressure.
dmpc::mpc::FaultPlan spread_plan(dmpc::mpc::FaultKind kind, std::uint64_t count,
                                 std::uint64_t total_rounds,
                                 std::uint64_t machines) {
  dmpc::mpc::FaultPlan plan;
  for (std::uint64_t i = 0; i < count; ++i) {
    dmpc::mpc::FaultEvent event;
    event.kind = kind;
    event.round = 1 + (i * total_rounds) / (count + 1);
    event.machine = i % machines;
    event.message = 0;
    plan.add(event);
  }
  return plan;
}

struct ScenarioResult {
  std::string name;
  std::uint64_t planned = 0;
  double wall_ms = 0.0;
  double slowdown = 0.0;
  bool identical = false;
  dmpc::mpc::RecoveryStats recovery;
};

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const bool quick = args.has("quick");
  const bool json = args.has("json");
  const auto n = static_cast<dmpc::graph::NodeId>(
      args.get_int("n", quick ? 256 : 512));

  // Dense enough to exercise the sparsification path (the interesting one:
  // many primitive invocations, so crash/drop windows land mid-pipeline).
  const auto g = dmpc::graph::gnm(
      n, static_cast<dmpc::graph::EdgeId>(16ull * n), /*seed=*/23);

  if (!json) {
    std::printf("== E18 fault recovery: n=%u, m=%llu%s ==\n", n,
                static_cast<unsigned long long>(g.num_edges()),
                quick ? " (quick)" : "");
  }

  // Fault-free baseline: defines the identity target and the logical round
  // span that fault plans are keyed on.
  const auto baseline =
      run_mis(g, dmpc::mpc::FaultPlan{}, dmpc::mpc::CheckpointMode::kRound);
  // Re-derive the round count from a plain solve report (the baseline above
  // zeroes recovery but keeps metrics).
  const auto probe = dmpc::Solver(dmpc::SolveOptions{}).mis(g);
  const std::uint64_t total_rounds = probe.report.metrics.rounds();
  const std::uint64_t machines = 16;  // Lower bound on any derived geometry.

  const std::uint64_t light = quick ? 2 : 4;
  const std::uint64_t heavy = quick ? 8 : 32;

  std::vector<Scenario> scenarios;
  using dmpc::mpc::CheckpointMode;
  using dmpc::mpc::FaultKind;
  scenarios.push_back({"crash_light",
                       spread_plan(FaultKind::kCrash, light, total_rounds, 1),
                       CheckpointMode::kRound});
  scenarios.push_back(
      {"crash_heavy",
       spread_plan(FaultKind::kCrash, heavy, total_rounds, machines),
       CheckpointMode::kRound});
  scenarios.push_back({"drop_light",
                       spread_plan(FaultKind::kDrop, light, total_rounds, 1),
                       CheckpointMode::kRound});
  scenarios.push_back(
      {"drop_heavy",
       spread_plan(FaultKind::kDrop, heavy, total_rounds, machines),
       CheckpointMode::kRound});
  {
    auto mixed = spread_plan(FaultKind::kCrash, light, total_rounds, machines);
    for (const auto kind : {FaultKind::kDrop, FaultKind::kStraggler,
                            FaultKind::kDuplicate}) {
      const auto part = spread_plan(kind, light, total_rounds, machines);
      for (const auto& e : part.events()) mixed.add(e);
    }
    scenarios.push_back({"mixed", std::move(mixed), CheckpointMode::kRound});
  }
  scenarios.push_back(
      {"crash_phase_ckpt",
       spread_plan(FaultKind::kCrash, light, total_rounds, machines),
       CheckpointMode::kPhase});

  std::vector<ScenarioResult> results;
  bool all_identical = true;
  for (const auto& scenario : scenarios) {
    const auto run = run_mis(g, scenario.faults, scenario.checkpoint);
    ScenarioResult r;
    r.name = scenario.name;
    r.planned = scenario.faults.events().size();
    r.wall_ms = run.ms;
    r.slowdown = baseline.ms > 0 ? run.ms / baseline.ms : 0.0;
    r.identical = run.in_set == baseline.in_set &&
                  run.report_json == baseline.report_json &&
                  run.trace == baseline.trace;
    r.recovery = run.recovery;
    all_identical = all_identical && r.identical;
    results.push_back(std::move(r));

    if (!json) {
      const auto& out = results.back();
      std::printf(
          "%-18s planned=%3llu wall=%8.2fms (x%4.2f)  faults=%llu "
          "retries=%llu replayed=%llu checkpoints=%llu  identical=%s\n",
          out.name.c_str(), static_cast<unsigned long long>(out.planned),
          out.wall_ms, out.slowdown,
          static_cast<unsigned long long>(out.recovery.faults_injected),
          static_cast<unsigned long long>(out.recovery.retries),
          static_cast<unsigned long long>(out.recovery.replayed_rounds),
          static_cast<unsigned long long>(out.recovery.checkpoints),
          out.identical ? "yes" : "NO");
    }
    if (!results.back().identical) {
      std::fprintf(stderr,
                   "FATAL: scenario '%s' output differs from fault-free run\n",
                   scenario.name.c_str());
      std::exit(1);
    }
  }

  if (json) {
    dmpc::Json rows = dmpc::Json::array();
    for (const auto& r : results) {
      rows.push(dmpc::Json::object()
                    .set("scenario", r.name)
                    .set("planned_events", r.planned)
                    .set("wall", dmpc::bench::wall_stats(r.wall_ms))
                    .set("slowdown_vs_fault_free", r.slowdown)
                    .set("identical", r.identical)
                    .set("recovery", dmpc::to_json(r.recovery)));
    }
    const auto doc =
        dmpc::bench::bench_envelope("e18", "fault injection recovery cost",
                                    quick, args.get("commit", ""))
            .set("n", static_cast<std::uint64_t>(n))
            .set("m", g.num_edges())
            .set("fault_free_rounds", total_rounds)
            .set("fault_free_wall", dmpc::bench::wall_stats(baseline.ms))
            .set("all_identical", all_identical)
            .set("scenarios", std::move(rows));
    std::printf("%s\n", doc.dump().c_str());
  } else {
    std::printf("all identity checks passed\n");
  }
  return 0;
}
