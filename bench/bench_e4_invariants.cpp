// E4 — §3.2 / §4.2 sparsification invariants hold after every stage.
//
// A dense G(n, m) forces a high degree class (i >= 5) so real stages run.
// Reported per row: number of stages, final max degree vs the 2 n^{4 delta}
// cap, and the worst measured invariant ratios across stages:
//  - degree ratio: max_v d_{E_j}(v) / (n^{-j delta} d_{E_0}(v) + n^{3 delta})
//    — the paper's Invariant (i) predicts (1 + o(1)).
//  - xv ratio: min_v |X(v) ∩ E_j| / (n^{-j delta}|X(v)|) — Invariant (ii)
//    predicts (1 - o(1)).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "mpc/cluster.hpp"
#include "sparsify/edge_sparsifier.hpp"
#include "sparsify/good_nodes.hpp"
#include "sparsify/node_sparsifier.hpp"

namespace {

void BM_EdgeInvariants(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::graph::gnm(static_cast<dmpc::graph::NodeId>(n),
                                  static_cast<dmpc::graph::EdgeId>(n * n / 16),
                                  41);
  dmpc::sparsify::Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;
  dmpc::mpc::ClusterConfig cc;
  cc.machine_space = 1 << 16;
  cc.num_machines = 1 << 10;
  std::uint64_t stages = 0;
  double worst_deg_ratio = 0, worst_xv_ratio = 2;
  std::uint32_t max_degree = 0;
  for (auto _ : state) {
    dmpc::mpc::Cluster cluster(cc);
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good =
        dmpc::sparsify::select_matching_good_set(cluster, params, g, alive);
    const auto sparse = dmpc::sparsify::sparsify_edges(
        cluster, params, g, good, dmpc::sparsify::SparsifyConfig{});
    stages = sparse.stages.size();
    max_degree = sparse.max_degree;
    for (const auto& r : sparse.stages) {
      worst_deg_ratio = std::max(worst_deg_ratio, r.invariant_degree_ratio);
      worst_xv_ratio = std::min(worst_xv_ratio, r.invariant_xv_ratio);
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["stages"] = static_cast<double>(stages);
  state.counters["max_degree_final"] = static_cast<double>(max_degree);
  state.counters["degree_cap"] = static_cast<double>(params.degree_cap());
  state.counters["worst_inv_i_ratio"] = worst_deg_ratio;
  state.counters["worst_inv_ii_ratio"] = worst_xv_ratio;
}

void BM_NodeInvariants(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::graph::gnm(static_cast<dmpc::graph::NodeId>(n),
                                  static_cast<dmpc::graph::EdgeId>(n * n / 16),
                                  42);
  dmpc::sparsify::Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;
  dmpc::mpc::ClusterConfig cc;
  cc.machine_space = 1 << 16;
  cc.num_machines = 1 << 10;
  std::uint64_t stages = 0;
  double worst_deg_ratio = 0, worst_h_ratio = 2;
  std::uint32_t max_q_degree = 0;
  for (auto _ : state) {
    dmpc::mpc::Cluster cluster(cc);
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good =
        dmpc::sparsify::select_mis_good_set(cluster, params, g, alive);
    const auto sparse = dmpc::sparsify::sparsify_nodes(
        cluster, params, g, alive, good, dmpc::sparsify::SparsifyConfig{});
    stages = sparse.stages.size();
    max_q_degree = sparse.max_q_degree;
    for (const auto& r : sparse.stages) {
      worst_deg_ratio = std::max(worst_deg_ratio, r.invariant_degree_ratio);
      worst_h_ratio = std::min(worst_h_ratio, r.invariant_xv_ratio);
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["stages"] = static_cast<double>(stages);
  state.counters["max_q_degree_final"] = static_cast<double>(max_q_degree);
  state.counters["degree_cap"] = static_cast<double>(params.degree_cap());
  state.counters["worst_inv_i_ratio"] = worst_deg_ratio;
  state.counters["worst_inv_ii_ratio"] = worst_h_ratio;
}

}  // namespace

BENCHMARK(BM_EdgeInvariants)->Arg(512)->Arg(1024)->Arg(2048)->Iterations(1);
BENCHMARK(BM_NodeInvariants)->Arg(512)->Arg(1024)->Arg(2048)->Iterations(1);

BENCHMARK_MAIN();
