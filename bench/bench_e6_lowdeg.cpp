// E6 — Theorem 1 (§5): with Delta <= n^{delta}, MIS runs in
// O(log Delta + log log n) rounds; the low-degree path beats the general
// O(log n) path for small Delta and degrades gracefully as Delta grows.
//
// Sweep: fixed n = 4096, Delta in {2..64} (random near-regular). Reported:
// lowdeg stages, phases per stage, lowdeg rounds, sparsification-path rounds
// for the same graph, rounds/log2(Delta).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "lowdeg/lowdeg_solver.hpp"
#include "mis/det_mis.hpp"

namespace {

void BM_LowDegVsGeneral(benchmark::State& state) {
  const auto degree = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t n = 4096;
  const auto g = dmpc::graph::random_regular(
      static_cast<dmpc::graph::NodeId>(n), degree,
      dmpc::bench::workload_seed(6, degree));
  std::uint64_t lowdeg_rounds = 0, lowdeg_stages = 0, phases = 0;
  std::uint64_t general_rounds = 0;
  for (auto _ : state) {
    const auto low = dmpc::lowdeg::lowdeg_mis(g, dmpc::lowdeg::LowDegConfig{});
    lowdeg_rounds = low.metrics.rounds();
    lowdeg_stages = low.stages;
    phases = low.phases_per_stage;
    const auto general = dmpc::mis::det_mis(g, dmpc::mis::DetMisConfig{});
    general_rounds = general.metrics.rounds();
  }
  state.counters["delta"] = static_cast<double>(degree);
  state.counters["lowdeg_rounds"] = static_cast<double>(lowdeg_rounds);
  state.counters["lowdeg_stages"] = static_cast<double>(lowdeg_stages);
  state.counters["phases_per_stage"] = static_cast<double>(phases);
  state.counters["general_rounds"] = static_cast<double>(general_rounds);
  state.counters["lowdeg_rounds_per_log2delta"] =
      static_cast<double>(lowdeg_rounds) /
      std::log2(static_cast<double>(std::max<std::uint32_t>(degree, 2)));
}

}  // namespace

BENCHMARK(BM_LowDegVsGeneral)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Second series: fixed Delta, growing n — the additive O(log log n) term.
namespace {

void BM_LowDegLogLogN(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::graph::random_regular(
      static_cast<dmpc::graph::NodeId>(n), 4,
      dmpc::bench::workload_seed(6, n));
  std::uint64_t rounds = 0, gather = 0;
  for (auto _ : state) {
    const auto result =
        dmpc::lowdeg::lowdeg_mis(g, dmpc::lowdeg::LowDegConfig{});
    rounds = result.metrics.rounds();
    const auto it = result.metrics.rounds_by_label().find("lowdeg/gather");
    gather = it == result.metrics.rounds_by_label().end() ? 0 : it->second;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["gather_rounds"] = static_cast<double>(gather);
}

}  // namespace

BENCHMARK(BM_LowDegLogLogN)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Arg(32768)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
