// E12 — ablation: independence degree c and selection batch size.
//
// (a) Hash independence c in {2, 4, 8} for the sparsification stages: the
//     paper needs a sufficiently large constant c for Lemma 9; measured:
//     seed trials and window escalations per stage.
// (b) Selection batch (candidates evaluated per O(1)-round block) in
//     {1, 4, 16, 64}: larger batches buy better committed seeds (higher
//     per-iteration progress) at the same round cost.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "matching/det_matching.hpp"
#include "support/stats.hpp"

namespace {

void BM_IndependenceDegree(benchmark::State& state) {
  const auto c = static_cast<unsigned>(state.range(0));
  const auto g = dmpc::graph::gnm(1024, 65536,
                                  dmpc::bench::workload_seed(12, c));
  dmpc::matching::DetMatchingConfig config;
  config.sparsify.hash_k = c;
  dmpc::RunningStats trials, windows;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    const auto result = dmpc::matching::det_maximal_matching(g, config);
    iterations = result.iterations;
    for (const auto& r : result.reports) {
      trials.add(static_cast<double>(r.selection_trials));
    }
  }
  state.counters["hash_k"] = static_cast<double>(c);
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["mean_selection_trials"] = trials.mean();
}

void BM_SelectionBatch(benchmark::State& state) {
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::graph::gnm(2048, 16384,
                                  dmpc::bench::workload_seed(12, 100 + batch));
  dmpc::matching::DetMatchingConfig config;
  config.selection_batch = batch;
  dmpc::RunningStats progress;
  std::uint64_t iterations = 0, rounds = 0;
  for (auto _ : state) {
    const auto result = dmpc::matching::det_maximal_matching(g, config);
    iterations = result.iterations;
    rounds = result.metrics.rounds();
    for (const auto& r : result.reports) progress.add(r.progress_fraction);
  }
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["mpc_rounds"] = static_cast<double>(rounds);
  state.counters["mean_progress_frac"] = progress.mean();
}

}  // namespace

BENCHMARK(BM_IndependenceDegree)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SelectionBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
