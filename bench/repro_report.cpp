// repro_report — regenerates every experiment table (E1..E12) in one run
// and prints them as markdown. The output of this binary is the measured
// side of EXPERIMENTS.md.
//
//   ./repro_report [--quick]     (quick halves the sweep sizes)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "apps/reductions.hpp"
#include "baselines/israeli_itai.hpp"
#include "congest/congest_mis.hpp"
#include "graph/algorithms.hpp"
#include "mpc/lowlevel.hpp"
#include "mpc/primitives.hpp"
#include "baselines/luby_matching.hpp"
#include "baselines/luby_mis.hpp"
#include "cclique/cc_mis.hpp"
#include "graph/generators.hpp"
#include "lowdeg/lowdeg_solver.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "mpc/cluster.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/scaling.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "sparsify/edge_sparsifier.hpp"
#include "sparsify/good_nodes.hpp"
#include "sparsify/node_sparsifier.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using dmpc::graph::EdgeId;
using dmpc::graph::Graph;
using dmpc::graph::NodeId;

bool g_quick = false;

std::vector<std::uint64_t> sweep_n() {
  if (g_quick) return {256, 512, 1024, 2048};
  return {256, 512, 1024, 2048, 4096, 8192};
}

void header(const char* id, const char* title) {
  std::printf("\n### %s — %s\n\n", id, title);
}

/// Theorem-envelope fit footer, same arithmetic as tools/scaling_check
/// (obs/scaling.hpp): least-squares y = a + b*log2(x), pass iff every
/// relative residual is within the slack scaling_check gates CI on.
void print_log_fit(const char* what, const std::vector<dmpc::obs::SeriesPoint>& series) {
  const auto fit =
      dmpc::obs::check_envelope(series, dmpc::obs::EnvelopeKind::kLogX,
                                /*slack=*/0.25);
  std::printf("\n%s vs log2(n): %.2f + %.2f * log2(n), r^2 %.2f, "
              "max residual %.3f -> %s\n",
              what, fit.intercept, fit.slope, fit.r_squared,
              fit.max_rel_residual, fit.pass ? "within envelope" : "VIOLATED");
}

/// One-cell certification summary: the run is re-solved through the Solver
/// in checked mode (certify=full, docs/ROBUSTNESS.md) and reported as
/// "ok P/N" (passed/total claims, skipped claims counted in N only) or the
/// first failing claim's name.
std::string cert_cell(const Graph& g, bool matching) {
  dmpc::SolveOptions options;
  options.certify = dmpc::verify::CertifyMode::kFull;
  const dmpc::Solver solver(options);
  try {
    const auto& certificate = [&]() -> const dmpc::verify::Certificate& {
      if (matching) {
        (void)solver.maximal_matching(g);
      } else {
        (void)solver.mis(g);
      }
      return solver.certificate();
    }();
    std::uint64_t passed = 0;
    for (const auto& claim : certificate.claims) {
      if (claim.verdict == dmpc::verify::Verdict::kPass) ++passed;
    }
    return "ok " + std::to_string(passed) + "/" +
           std::to_string(certificate.claims.size());
  } catch (const dmpc::verify::CertificationError& e) {
    const auto* failure = e.certificate().first_failure();
    return std::string("FAILED ") +
           (failure != nullptr ? dmpc::verify::claim_name(failure->claim)
                               : "?");
  }
}

void e1_e2() {
  header("E1", "Theorem 7: deterministic maximal matching rounds vs n");
  std::printf("| n | iterations | MPC rounds | rounds/log2(n) | peak load |"
              " certificate |\n");
  std::printf("|---|---|---|---|---|---|\n");
  std::vector<dmpc::obs::SeriesPoint> rounds_series, iter_series;
  for (const auto n : sweep_n()) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(8 * n), n + 1);
    const auto r = dmpc::matching::det_maximal_matching(g, {});
    std::printf("| %llu | %llu | %llu | %.1f | %llu | %s |\n",
                (unsigned long long)n, (unsigned long long)r.iterations,
                (unsigned long long)r.metrics.rounds(),
                double(r.metrics.rounds()) / std::log2(double(n)),
                (unsigned long long)r.metrics.peak_machine_load(),
                cert_cell(g, /*matching=*/true).c_str());
    rounds_series.push_back({double(n), double(r.metrics.rounds())});
    iter_series.push_back({double(n), double(r.iterations)});
  }
  print_log_fit("MPC rounds", rounds_series);
  print_log_fit("iterations", iter_series);

  header("E2", "Theorem 14: deterministic MIS rounds vs n");
  std::printf("| n | iterations | MPC rounds | rounds/log2(n) | peak load |"
              " certificate |\n");
  std::printf("|---|---|---|---|---|---|\n");
  rounds_series.clear();
  for (const auto n : sweep_n()) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(8 * n), n + 2);
    const auto r = dmpc::mis::det_mis(g, {});
    std::printf("| %llu | %llu | %llu | %.1f | %llu | %s |\n",
                (unsigned long long)n, (unsigned long long)r.iterations,
                (unsigned long long)r.metrics.rounds(),
                double(r.metrics.rounds()) / std::log2(double(n)),
                (unsigned long long)r.metrics.peak_machine_load(),
                cert_cell(g, /*matching=*/false).c_str());
    rounds_series.push_back({double(n), double(r.metrics.rounds())});
  }
  print_log_fit("MPC rounds", rounds_series);
}

void e3() {
  header("E3", "Lemma 3 / Cor. 8 & 16: good-class degree mass >= (delta/2)|E|");
  std::printf("| family | bound delta/2 | matching B mass frac | MIS B mass frac |\n");
  std::printf("|---|---|---|---|\n");
  struct Fam {
    const char* name;
    Graph g;
  };
  const std::uint64_t n = g_quick ? 1024 : 2048;
  std::vector<Fam> fams;
  fams.push_back({"gnm", dmpc::graph::gnm(n, 8 * n, 31)});
  fams.push_back({"power_law", dmpc::graph::power_law(n, 6 * n, 2.5, 32)});
  fams.push_back({"bipartite",
                  dmpc::graph::random_bipartite(n / 2, n / 2, 6 * n, 33)});
  fams.push_back({"regular", dmpc::graph::random_regular(n, 16, 34)});
  for (const auto& fam : fams) {
    dmpc::sparsify::Params params;
    params.n = fam.g.num_nodes();
    params.inv_delta = 16;
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = 1 << 16;
    cc.num_machines = 1 << 10;
    dmpc::mpc::Cluster cluster(cc);
    std::vector<bool> alive(fam.g.num_nodes(), true);
    const auto mm =
        dmpc::sparsify::select_matching_good_set(cluster, params, fam.g, alive);
    const auto mis =
        dmpc::sparsify::select_mis_good_set(cluster, params, fam.g, alive);
    std::printf("| %s | %.4f | %.4f | %.4f |\n", fam.name,
                params.delta() / 2,
                double(mm.b_degree_mass) / double(2 * mm.alive_edges),
                double(mis.b_degree_mass) / double(2 * mis.alive_edges));
  }
}

void e4() {
  header("E4", "Sparsification invariants (Lemmas 10/11 & 17/18)");
  std::printf("| n | side | stages | max deg after | cap 2n^{4d} | worst inv(i) ratio | worst inv(ii) ratio |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  for (const std::uint64_t n : {512ull, 1024ull, 2048ull}) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(n * n / 16), 41);
    dmpc::sparsify::Params params;
    params.n = g.num_nodes();
    params.inv_delta = 8;
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = 1 << 16;
    cc.num_machines = 1 << 10;
    {
      dmpc::mpc::Cluster cluster(cc);
      std::vector<bool> alive(g.num_nodes(), true);
      const auto good = dmpc::sparsify::select_matching_good_set(
          cluster, params, g, alive);
      const auto sp =
          dmpc::sparsify::sparsify_edges(cluster, params, g, good, {});
      double wi = 0, wii = 2;
      for (const auto& s : sp.stages) {
        wi = std::max(wi, s.invariant_degree_ratio);
        wii = std::min(wii, s.invariant_xv_ratio);
      }
      std::printf("| %llu | edges | %zu | %u | %llu | %.3f | %.3f |\n",
                  (unsigned long long)n, sp.stages.size(), sp.max_degree,
                  (unsigned long long)params.degree_cap(), wi, wii);
    }
    {
      dmpc::mpc::Cluster cluster(cc);
      std::vector<bool> alive(g.num_nodes(), true);
      const auto good =
          dmpc::sparsify::select_mis_good_set(cluster, params, g, alive);
      const auto sp = dmpc::sparsify::sparsify_nodes(cluster, params, g,
                                                     alive, good, {});
      double wi = 0, wii = 2;
      for (const auto& s : sp.stages) {
        wi = std::max(wi, s.invariant_degree_ratio);
        wii = std::min(wii, s.invariant_xv_ratio);
      }
      std::printf("| %llu | nodes | %zu | %u | %llu | %.3f | %.3f |\n",
                  (unsigned long long)n, sp.stages.size(), sp.max_q_degree,
                  (unsigned long long)params.degree_cap(), wi, wii);
    }
  }
}

void e5() {
  header("E5", "Lemmas 13 & 21: per-iteration edge removal fraction");
  std::printf("| family | problem | paper floor | min removed | mean removed |\n");
  std::printf("|---|---|---|---|---|\n");
  const std::uint64_t n = g_quick ? 1024 : 2048;
  struct Fam {
    const char* name;
    Graph g;
  };
  std::vector<Fam> fams;
  fams.push_back({"gnm", dmpc::graph::gnm(n, 8 * n, 51)});
  fams.push_back({"power_law", dmpc::graph::power_law(n, 6 * n, 2.5, 52)});
  fams.push_back({"regular", dmpc::graph::random_regular(n, 16, 53)});
  for (const auto& fam : fams) {
    {
      dmpc::matching::DetMatchingConfig config;
      const auto params =
          dmpc::matching::params_for(config, fam.g.num_nodes());
      const auto r = dmpc::matching::det_maximal_matching(fam.g, config);
      dmpc::RunningStats frac;
      for (const auto& rep : r.reports) frac.add(rep.progress_fraction);
      std::printf("| %s | matching | %.2e | %.3f | %.3f |\n", fam.name,
                  params.delta() / 536.0, frac.min(), frac.mean());
    }
    {
      dmpc::mis::DetMisConfig config;
      const auto params = dmpc::mis::params_for(config, fam.g.num_nodes());
      const auto r = dmpc::mis::det_mis(fam.g, config);
      dmpc::RunningStats frac;
      for (const auto& rep : r.reports) frac.add(rep.progress_fraction);
      std::printf("| %s | MIS | %.2e | %.3f | %.3f |\n", fam.name,
                  params.delta() * params.delta() / 400.0, frac.min(),
                  frac.mean());
    }
  }
}

void e6() {
  header("E6", "Theorem 1 (§5): rounds = O(log Delta + log log n)");
  std::printf("| Delta (n=4096) | lowdeg rounds | stages | phases/stage | general rounds |\n");
  std::printf("|---|---|---|---|---|\n");
  for (const std::uint32_t d : {2u, 4u, 8u, 16u, 32u}) {
    const auto g = dmpc::graph::random_regular(4096, d, 600 + d);
    const auto low = dmpc::lowdeg::lowdeg_mis(g, {});
    const auto gen = dmpc::mis::det_mis(g, {});
    std::printf("| %u | %llu | %llu | %u | %llu |\n", d,
                (unsigned long long)low.metrics.rounds(),
                (unsigned long long)low.stages, low.phases_per_stage,
                (unsigned long long)gen.metrics.rounds());
  }
  std::printf("\n| n (Delta=4) | lowdeg rounds | gather (log log n) rounds |\n");
  std::printf("|---|---|---|\n");
  for (const std::uint64_t n : {512ull, 2048ull, 8192ull, 32768ull}) {
    const auto g = dmpc::graph::random_regular(static_cast<NodeId>(n), 4,
                                               700 + n);
    const auto low = dmpc::lowdeg::lowdeg_mis(g, {});
    const auto it = low.metrics.rounds_by_label().find("lowdeg/gather");
    std::printf("| %llu | %llu | %llu |\n", (unsigned long long)n,
                (unsigned long long)low.metrics.rounds(),
                (unsigned long long)(it == low.metrics.rounds_by_label().end()
                                         ? 0
                                         : it->second));
  }
}

void e7() {
  header("E7", "Corollary 2: CONGESTED CLIQUE MIS, ours vs [15]-style baseline");
  std::printf("| Delta (n=2048) | ours rounds | baseline rounds | speedup |\n");
  std::printf("|---|---|---|---|\n");
  for (const std::uint32_t d : {2u, 4u, 8u, 16u, 32u}) {
    const auto g = dmpc::graph::random_regular(2048, d, 800 + d);
    const auto ours = dmpc::cclique::cc_mis(g);
    const auto base = dmpc::cclique::cc_mis_censor_hillel(g);
    std::printf("| %u | %llu | %llu | %.1fx |\n", d,
                (unsigned long long)ours.metrics.rounds(),
                (unsigned long long)base.metrics.rounds(),
                double(base.metrics.rounds()) /
                    double(std::max<std::uint64_t>(ours.metrics.rounds(), 1)));
  }
}

void e8() {
  header("E8", "Space: peak machine load vs S = O(n^eps)");
  std::printf("| n | eps | S budget | peak load | peak/budget | peak/n^eps |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (const std::uint64_t n : {512ull, 2048ull, 8192ull}) {
    for (const double eps : {0.3, 0.5, 0.7}) {
      const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                      static_cast<EdgeId>(8 * n), 900 + n);
      dmpc::mis::DetMisConfig config;
      config.eps = eps;
      const auto cc =
          dmpc::mis::cluster_config_for(config, g.num_nodes(), g.num_edges());
      const auto r = dmpc::mis::det_mis(g, config);
      std::printf("| %llu | %.1f | %llu | %llu | %.2f | %.2f |\n",
                  (unsigned long long)n, eps,
                  (unsigned long long)cc.machine_space,
                  (unsigned long long)r.metrics.peak_machine_load(),
                  double(r.metrics.peak_machine_load()) /
                      double(cc.machine_space),
                  double(r.metrics.peak_machine_load()) /
                      std::pow(double(n), eps));
    }
  }
}

void e9() {
  header("E9", "Derandomization cost: seed trials per O(1)-round step");
  std::printf("| n | matching sel. trials (mean) | MIS sel. trials (mean) | sparsify stage trials (max) |\n");
  std::printf("|---|---|---|---|\n");
  for (const std::uint64_t n : {512ull, 1024ull, 2048ull}) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(8 * n), 1000 + n);
    const auto mm = dmpc::matching::det_maximal_matching(g, {});
    const auto mis = dmpc::mis::det_mis(g, {});
    dmpc::RunningStats mmr, misr;
    for (const auto& r : mm.reports) mmr.add(double(r.selection_trials));
    for (const auto& r : mis.reports) misr.add(double(r.selection_trials));
    // Dense instance for stage trials.
    const auto dense = dmpc::graph::gnm(static_cast<NodeId>(n),
                                        static_cast<EdgeId>(n * n / 16),
                                        1100 + n);
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = 1 << 16;
    cc.num_machines = 1 << 10;
    dmpc::mpc::Cluster cluster(cc);
    dmpc::sparsify::Params params;
    params.n = dense.num_nodes();
    params.inv_delta = 8;
    std::vector<bool> alive(dense.num_nodes(), true);
    const auto good = dmpc::sparsify::select_matching_good_set(
        cluster, params, dense, alive);
    const auto sp =
        dmpc::sparsify::sparsify_edges(cluster, params, dense, good, {});
    std::uint64_t max_trials = 0;
    for (const auto& s : sp.stages) {
      max_trials = std::max(max_trials, s.trials);
    }
    std::printf("| %llu | %.0f | %.0f | %llu |\n", (unsigned long long)n,
                mmr.mean(), misr.mean(), (unsigned long long)max_trials);
  }
}

void e10() {
  header("E10", "Deterministic vs randomized Luby (iterations to finish)");
  std::printf("| n | det MM | Luby MM | Israeli-Itai | det MIS | Luby MIS | Luby MIS (pairwise) |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  for (const auto n : sweep_n()) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(8 * n), 1200 + n);
    std::printf(
        "| %llu | %llu | %llu | %llu | %llu | %llu | %llu |\n",
        (unsigned long long)n,
        (unsigned long long)dmpc::matching::det_maximal_matching(g, {})
            .iterations,
        (unsigned long long)dmpc::baselines::luby_matching(g, 1).iterations,
        (unsigned long long)dmpc::baselines::israeli_itai(g, 1).iterations,
        (unsigned long long)dmpc::mis::det_mis(g, {}).iterations,
        (unsigned long long)dmpc::baselines::luby_mis(g, 1).iterations,
        (unsigned long long)dmpc::baselines::luby_mis_pairwise(g, 1)
            .iterations);
  }
}

void e11() {
  header("E11", "Ablation: 2-hop footprint with vs without sparsification");
  std::printf("| n | S budget | 2-hop words without E* | with E* | without fits? | with fits? |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (const std::uint64_t n : {512ull, 1024ull, 2048ull}) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(n * n / 16),
                                    1300 + n);
    dmpc::matching::DetMatchingConfig config;
    const auto cc = dmpc::matching::cluster_config_for(config, g.num_nodes(),
                                                       g.num_edges());
    auto unchecked = cc;
    unchecked.enforce_space = false;
    dmpc::mpc::Cluster cluster(unchecked);
    const auto params = dmpc::matching::params_for(config, g.num_nodes());
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good =
        dmpc::sparsify::select_matching_good_set(cluster, params, g, alive);
    auto two_hop = [&](const std::vector<bool>& mask) {
      std::vector<std::vector<EdgeId>> inc(g.num_nodes());
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (!mask[e]) continue;
        inc[g.edge(e).u].push_back(e);
        inc[g.edge(e).v].push_back(e);
      }
      std::uint64_t worst = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!good.in_B[v]) continue;
        std::uint64_t words = inc[v].size();
        for (EdgeId e : inc[v]) words += inc[g.other_endpoint(e, v)].size();
        worst = std::max(worst, 2 * words);
      }
      return worst;
    };
    const auto without = two_hop(good.in_E0);
    const auto sp =
        dmpc::sparsify::sparsify_edges(cluster, params, g, good, {});
    const auto with = two_hop(sp.in_Estar);
    std::printf("| %llu | %llu | %llu | %llu | %s | %s |\n",
                (unsigned long long)n, (unsigned long long)cc.machine_space,
                (unsigned long long)without, (unsigned long long)with,
                without <= cc.machine_space ? "yes" : "no",
                with <= cc.machine_space ? "yes" : "no");
  }
}

void e12() {
  header("E12", "Ablations: independence degree c; selection batch size");
  std::printf("| hash k | iterations (dense G(1024, 64k)) |\n|---|---|\n");
  for (const unsigned k : {2u, 4u, 8u}) {
    const auto g = dmpc::graph::gnm(1024, 65536, 1400 + k);
    dmpc::matching::DetMatchingConfig config;
    config.sparsify.hash_k = k;
    const auto r = dmpc::matching::det_maximal_matching(g, config);
    std::printf("| %u | %llu |\n", k, (unsigned long long)r.iterations);
  }
  std::printf("\n| selection batch | iterations | mean removed frac | rounds |\n|---|---|---|---|\n");
  for (const std::uint64_t b : {1ull, 4ull, 16ull, 64ull}) {
    const auto g = dmpc::graph::gnm(2048, 16384, 1500 + b);
    dmpc::matching::DetMatchingConfig config;
    config.selection_batch = b;
    const auto r = dmpc::matching::det_maximal_matching(g, config);
    dmpc::RunningStats frac;
    for (const auto& rep : r.reports) frac.add(rep.progress_fraction);
    std::printf("| %llu | %llu | %.3f | %llu |\n", (unsigned long long)b,
                (unsigned long long)r.iterations, frac.mean(),
                (unsigned long long)r.metrics.rounds());
  }
}

void e13() {
  header("E13", "Lemma-4 realizability: message-passing vs charged primitives");
  std::printf("| primitive | n | S | real rounds | charged rounds | peak load |\n");
  std::printf("|---|---|---|---|---|---|\n");
  dmpc::Rng rng(77);
  for (const auto& [n, sp] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {100000, 64}, {100000, 256}}) {
    std::vector<dmpc::mpc::Word> v(n);
    for (auto& x : v) x = rng.next_below(1u << 30);
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = sp;
    cc.num_machines = 1 << 16;
    dmpc::mpc::Cluster real(cc);
    dmpc::mpc::lowlevel::prefix_sum(real, v);
    dmpc::mpc::Cluster charged(cc);
    dmpc::mpc::prefix_sum_exclusive(charged, v);
    std::printf("| prefix sum | %llu | %llu | %llu | %llu | %llu |\n",
                (unsigned long long)n, (unsigned long long)sp,
                (unsigned long long)real.metrics().rounds(),
                (unsigned long long)charged.metrics().rounds(),
                (unsigned long long)real.metrics().peak_machine_load());
  }
  for (const auto& [n, sp] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {3000, 256}, {12000, 512}}) {
    std::vector<dmpc::mpc::Word> v(n);
    for (auto& x : v) x = rng.next_below(1u << 30);
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = sp;
    cc.num_machines = 1 << 16;
    dmpc::mpc::Cluster real(cc);
    dmpc::mpc::lowlevel::sort(real, v);
    dmpc::mpc::Cluster charged(cc);
    auto copy = v;
    dmpc::mpc::dsort(charged, copy, std::less<>{});
    std::printf("| sample sort | %llu | %llu | %llu | %llu | %llu |\n",
                (unsigned long long)n, (unsigned long long)sp,
                (unsigned long long)real.metrics().rounds(),
                (unsigned long long)charged.metrics().rounds(),
                (unsigned long long)real.metrics().peak_machine_load());
  }
}

void e14() {
  header("E14", "Application guarantees (Koenig-exact vertex cover; coloring)");
  std::printf("| n (bipartite) | cover/OPT (<=2) | maximal/maximum (>=0.5) |\n");
  std::printf("|---|---|---|\n");
  for (const std::uint64_t n : {256ull, 512ull, 1024ull}) {
    const auto g = dmpc::graph::random_bipartite(
        static_cast<NodeId>(n / 2), static_cast<NodeId>(n - n / 2),
        static_cast<EdgeId>(4 * n), 1600 + n);
    const auto maximum = dmpc::graph::hopcroft_karp(g);
    const auto cover = dmpc::apps::vertex_cover_2approx(g);
    std::printf("| %llu | %.3f | %.3f |\n", (unsigned long long)n,
                double(cover.cover_size) / double(maximum.size),
                double(cover.matching_size) / double(maximum.size));
  }
  std::printf("\n| Delta | colors used | palette |\n|---|---|---|\n");
  for (const std::uint32_t d : {3u, 5u, 8u}) {
    const auto g = dmpc::graph::random_regular(512, d, 1700 + d);
    const auto coloring = dmpc::apps::delta_plus_one_coloring(g);
    std::printf("| %u | %u | %u |\n", g.max_degree(), coloring.colors_used,
                g.max_degree() + 1);
  }
}

void e15() {
  header("E15", "§6 extension: derandomized Luby in CONGEST (round cost vs D)");
  std::printf("| topology | BFS depth | det rounds | randomized rounds |\n");
  std::printf("|---|---|---|---|\n");
  struct Top {
    const char* name;
    Graph g;
  };
  std::vector<Top> tops;
  tops.push_back({"star(1023)", dmpc::graph::star(1023)});
  tops.push_back({"grid(32x32)", dmpc::graph::grid(32, 32)});
  tops.push_back({"path(1024)", dmpc::graph::path(1024)});
  for (const auto& top : tops) {
    const auto det = dmpc::congest::congest_mis(top.g);
    const auto rand = dmpc::congest::luby_mis_congest(top.g, 1);
    std::printf("| %s | %u | %llu | %llu |\n", top.name, det.bfs_depth,
                (unsigned long long)det.metrics.rounds(),
                (unsigned long long)rand.metrics.rounds());
  }
}

void e16() {
  header("E16", "Observability: metrics-registry snapshot of one traced MIS run");
  const std::uint64_t n = g_quick ? 512 : 1024;
  const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                  static_cast<EdgeId>(8 * n), 1800 + n);
  // One traced solve through the Solver; the aggregate table below is the
  // model section of the solve's registry delta (Solver::metrics_snapshot),
  // not a hand re-aggregation of the collected spans — the spans stay
  // available for drill-down, the registry is the source of truth for sums.
  dmpc::obs::CollectorSink collector;
  dmpc::obs::TraceSession session(&collector);
  dmpc::SolveOptions options;
  options.trace = &session;
  const dmpc::Solver solver(options);
  const auto r = solver.mis(g);
  session.finish();
  std::printf("| metric | value |\n");
  std::printf("|---|---|\n");
  const auto& snapshot = solver.metrics_snapshot();
  for (const auto& entry : snapshot.entries) {
    if (entry.section != dmpc::obs::MetricSection::kModel) continue;
    if (entry.value == 0) continue;
    if (entry.kind == dmpc::obs::MetricKind::kHistogram) {
      std::printf("| %s | total=%lld sum=%lld |\n", entry.name.c_str(),
                  (long long)entry.value, (long long)entry.sum);
    } else {
      std::printf("| %s | %lld |\n", entry.name.c_str(),
                  (long long)entry.value);
    }
  }
  const auto* rounds = snapshot.find("mpc/rounds");
  const auto* comm = snapshot.find("mpc/communication");
  const bool matches =
      rounds != nullptr && comm != nullptr &&
      std::uint64_t(rounds->value) == r.report.metrics.rounds() &&
      std::uint64_t(comm->value) == r.report.metrics.total_communication();
  std::printf("\ntrace events: %llu (%llu collected); registry matches "
              "report totals: %s\n",
              (unsigned long long)session.events_emitted(),
              (unsigned long long)collector.events().size(),
              matches ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  g_quick = args.has("quick");
  std::printf("# dmpc experiment report%s\n", g_quick ? " (quick)" : "");
  e1_e2();
  e3();
  e4();
  e5();
  e6();
  e7();
  e8();
  e9();
  e10();
  e11();
  e12();
  e13();
  e14();
  e15();
  e16();
  std::printf("\n(report complete)\n");
  return 0;
}
