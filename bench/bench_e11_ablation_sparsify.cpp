// E11 — ablation: why sparsify at all?
//
// The paper's motivation for E* (§1.1.1): without sparsification, gathering
// 2-hop neighborhoods of good nodes needs Theta(Delta^2) words on a machine
// — beyond S for large Delta. This ablation measures, on dense inputs, the
// 2-hop footprint of the good set *before* sparsification vs *after*, next
// to the machine budget S. "without_fits" = 1 would mean sparsification was
// unnecessary; the sweep shows it 0 while "with_fits" stays 1.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "matching/det_matching.hpp"
#include "sparsify/edge_sparsifier.hpp"
#include "sparsify/good_nodes.hpp"

namespace {

using dmpc::graph::EdgeId;
using dmpc::graph::NodeId;

std::uint64_t max_two_hop_words(const dmpc::graph::Graph& g,
                                const std::vector<bool>& edge_mask,
                                const std::vector<bool>& centers) {
  std::vector<std::vector<EdgeId>> incident(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_mask[e]) continue;
    incident[g.edge(e).u].push_back(e);
    incident[g.edge(e).v].push_back(e);
  }
  std::uint64_t worst = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!centers[v]) continue;
    std::uint64_t words = incident[v].size();
    for (EdgeId e : incident[v]) {
      words += incident[g.other_endpoint(e, v)].size();
    }
    worst = std::max(worst, 2 * words);
  }
  return worst;
}

void BM_SparsifyAblation(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::graph::gnm(
      static_cast<NodeId>(n), static_cast<EdgeId>(n * n / 16),
      dmpc::bench::workload_seed(11, n));
  dmpc::matching::DetMatchingConfig config;
  const auto cluster_cfg =
      dmpc::matching::cluster_config_for(config, g.num_nodes(), g.num_edges());
  const auto params = dmpc::matching::params_for(config, g.num_nodes());

  std::uint64_t without = 0, with = 0;
  for (auto _ : state) {
    // Space checks off: we *want* to measure the overflow.
    auto unchecked_cfg = cluster_cfg;
    unchecked_cfg.enforce_space = false;
    dmpc::mpc::Cluster cluster(unchecked_cfg);
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good =
        dmpc::sparsify::select_matching_good_set(cluster, params, g, alive);
    without = max_two_hop_words(g, good.in_E0, good.in_B);
    const auto sparse = dmpc::sparsify::sparsify_edges(
        cluster, params, g, good, config.sparsify);
    with = max_two_hop_words(g, sparse.in_Estar, good.in_B);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["S_budget"] = static_cast<double>(cluster_cfg.machine_space);
  state.counters["two_hop_words_without_sparsify"] =
      static_cast<double>(without);
  state.counters["two_hop_words_with_sparsify"] = static_cast<double>(with);
  state.counters["without_fits"] =
      without <= cluster_cfg.machine_space ? 1.0 : 0.0;
  state.counters["with_fits"] = with <= cluster_cfg.machine_space ? 1.0 : 0.0;
}

}  // namespace

BENCHMARK(BM_SparsifyAblation)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
