// E10 — deterministic vs randomized Luby: same O(log n) iteration shape;
// determinism costs a constant factor in iterations, never correctness.
//
// Rows per n: iterations of randomized Luby (expected-case), our
// deterministic pipelines, and per-iteration progress comparison.
#include <benchmark/benchmark.h>

#include "baselines/israeli_itai.hpp"
#include "baselines/luby_matching.hpp"
#include "baselines/luby_mis.hpp"
#include "bench_common.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"

namespace {

void BM_MisDetVsRandom(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/10);
  std::uint64_t det_iters = 0, luby_iters = 0, luby_pw_iters = 0;
  for (auto _ : state) {
    det_iters = dmpc::mis::det_mis(g, dmpc::mis::DetMisConfig{}).iterations;
    luby_iters = dmpc::baselines::luby_mis(g, 1).iterations;
    luby_pw_iters = dmpc::baselines::luby_mis_pairwise(g, 1).iterations;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["det_iterations"] = static_cast<double>(det_iters);
  state.counters["luby_iterations"] = static_cast<double>(luby_iters);
  state.counters["luby_pairwise_iterations"] =
      static_cast<double>(luby_pw_iters);
  state.counters["det_over_luby"] =
      static_cast<double>(det_iters) /
      static_cast<double>(std::max<std::uint64_t>(luby_iters, 1));
}

void BM_MatchingDetVsRandom(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/10);
  std::uint64_t det_iters = 0, luby_iters = 0, ii_iters = 0;
  for (auto _ : state) {
    det_iters = dmpc::matching::det_maximal_matching(
                    g, dmpc::matching::DetMatchingConfig{})
                    .iterations;
    luby_iters = dmpc::baselines::luby_matching(g, 1).iterations;
    ii_iters = dmpc::baselines::israeli_itai(g, 1).iterations;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["det_iterations"] = static_cast<double>(det_iters);
  state.counters["luby_iterations"] = static_cast<double>(luby_iters);
  state.counters["israeli_itai_iterations"] = static_cast<double>(ii_iters);
  state.counters["det_over_luby"] =
      static_cast<double>(det_iters) /
      static_cast<double>(std::max<std::uint64_t>(luby_iters, 1));
}

}  // namespace

BENCHMARK(BM_MisDetVsRandom)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_MatchingDetVsRandom)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
