// E1 — Theorem 7: deterministic maximal matching runs in O(log n) MPC
// rounds with S = O(n^eps).
//
// Series: n in {256 .. 8192} on G(n, 8n). Reported per row: measured MPC
// rounds, outer iterations, and rounds/log2(n) (flat iff the O(log n) shape
// holds). EXPERIMENTS.md records the paper-vs-measured comparison.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "matching/det_matching.hpp"

namespace {

void BM_DetMatchingRounds(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/1);
  dmpc::matching::DetMatchingConfig config;
  std::uint64_t rounds = 0, iterations = 0, peak = 0;
  for (auto _ : state) {
    const auto result = dmpc::matching::det_maximal_matching(g, config);
    rounds = result.metrics.rounds();
    iterations = result.iterations;
    peak = result.metrics.peak_machine_load();
    benchmark::DoNotOptimize(result.matching.data());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["mpc_rounds"] = static_cast<double>(rounds);
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["rounds_per_log2n"] =
      static_cast<double>(rounds) / std::log2(static_cast<double>(n));
  state.counters["peak_load"] = static_cast<double>(peak);
}

}  // namespace

BENCHMARK(BM_DetMatchingRounds)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
