// E17: host-parallel execution engine — speedup with byte-identical output.
//
// The exec/ subsystem parallelizes the simulator's host-side hot loops (seed
// evaluation, per-machine compute, graph construction) under a determinism
// contract: results are bitwise-identical for every thread count. This bench
// measures the wall-clock speedup of threads=hardware over threads=1 on each
// hot path and *asserts* the identity contract on every comparison — a run
// that is fast but not identical is a failure, not a result.
//
//   ./bench_e17_host_parallel [--n=100000] [--threads=0] [--quick] [--json]
//
// Plain executable (not google-benchmark): each section prints
//   <section>  serial=<ms>  parallel=<ms>(x<speedup>)  identical=yes
// On a 1-core host the speedup hovers around 1.0x; the identity checks are
// the part that must hold everywhere. With --json the same data is emitted
// as one JSON document (bench/bench_json.hpp envelope) on stdout so CI can
// archive it next to the BENCH_*.json artifacts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "bench_json.hpp"
#include "derand/objective.hpp"
#include "derand/seed_search.hpp"
#include "exec/parallel.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "mpc/cluster.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "support/options.hpp"

namespace {

using Clock = std::chrono::steady_clock;

bool g_json = false;
dmpc::Json g_sections = dmpc::Json::array();

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void report(const char* section, double serial_ms, double parallel_ms,
            bool identical) {
  if (g_json) {
    g_sections.push(
        dmpc::Json::object()
            .set("section", std::string(section))
            .set("serial", dmpc::bench::wall_stats(serial_ms))
            .set("parallel", dmpc::bench::wall_stats(parallel_ms))
            .set("speedup", parallel_ms > 0 ? serial_ms / parallel_ms : 0.0)
            .set("identical", identical));
  } else {
    std::printf(
        "%-24s serial=%8.2fms  parallel=%8.2fms (x%.2f)  identical=%s\n",
        section, serial_ms, parallel_ms,
        parallel_ms > 0 ? serial_ms / parallel_ms : 0.0,
        identical ? "yes" : "NO");
  }
  if (!identical) {
    std::fprintf(stderr, "FATAL: %s parallel output differs from serial\n",
                 section);
    std::exit(1);
  }
}

/// Deliberately compute-heavy objective standing in for the sparsifier's
/// per-seed stage simulation: a short hash-mixing loop per term.
class MixObjective final : public dmpc::derand::Objective {
 public:
  explicit MixObjective(std::uint64_t terms) : terms_(terms) {}

  double evaluate(std::uint64_t seed) const override {
    double q = 0.0;
    for (std::uint64_t t = 0; t < terms_; ++t) {
      std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + t;
      x ^= x >> 33;
      x *= 0xFF51AFD7ED558CCDull;
      x ^= x >> 29;
      q += static_cast<double>(x & 0xFF) / 255.0;
    }
    return q;
  }
  std::uint64_t term_count() const override { return terms_; }

 private:
  std::uint64_t terms_;
};

dmpc::mpc::Cluster make_cluster(std::uint32_t threads) {
  // Solver-owned provisioning with a pinned geometry (hand-built
  // mpc::ClusterConfig is deprecated at call sites).
  dmpc::SolveOptions options;
  options.threads = threads;
  options.cluster.machine_space = 4096;
  options.cluster.num_machines = 64;
  return dmpc::Solver(options).cluster(/*n=*/2, /*m=*/0);
}

void bench_seed_search(std::uint64_t seed_count, std::uint64_t terms,
                       std::uint32_t threads) {
  // find_best_seed evaluates the whole budget — a fixed, deterministic
  // amount of work per run, which is what a timing comparison wants.
  const MixObjective objective(terms);

  auto serial = make_cluster(1);
  const auto t0 = Clock::now();
  const auto a =
      dmpc::derand::find_best_seed(serial, objective, seed_count, seed_count);
  const double serial_ms = ms_since(t0);

  auto parallel = make_cluster(threads);
  const auto t1 = Clock::now();
  const auto b = dmpc::derand::find_best_seed(parallel, objective, seed_count,
                                              seed_count);
  const double parallel_ms = ms_since(t1);

  report("seed_search", serial_ms, parallel_ms,
         a.seed == b.seed && a.value == b.value && a.trials == b.trials &&
             a.batches == b.batches);
}

void bench_graph_build(std::uint64_t n, std::uint32_t threads) {
  const auto proto = dmpc::graph::gnm(static_cast<dmpc::graph::NodeId>(n),
                                      static_cast<dmpc::graph::EdgeId>(8 * n),
                                      /*seed=*/17);
  // Re-extract the edge list (from_edges re-sorts and re-validates it).
  const auto proto_edges = proto.edges();
  std::vector<dmpc::graph::Edge> edges(proto_edges.begin(),
                                       proto_edges.end());

  auto edges_a = edges;
  const auto t0 = Clock::now();
  const auto ga = dmpc::graph::Graph::from_edges(
      proto.num_nodes(), std::move(edges_a), dmpc::exec::Executor::serial());
  const double serial_ms = ms_since(t0);

  auto edges_b = edges;
  const auto ex = dmpc::exec::Executor::with_threads(threads);
  const auto t1 = Clock::now();
  const auto gb = dmpc::graph::Graph::from_edges(proto.num_nodes(),
                                                 std::move(edges_b), ex);
  const double parallel_ms = ms_since(t1);

  report("graph_from_edges", serial_ms, parallel_ms,
         ga.num_nodes() == gb.num_nodes() &&
             ga.max_degree() == gb.max_degree() && ga.edges() == gb.edges());
}

struct SolveArtifacts {
  std::vector<bool> in_set;
  std::string report_json;
  std::string trace;
  double ms = 0.0;
};

SolveArtifacts run_solve(const dmpc::graph::Graph& g, std::uint32_t threads) {
  SolveArtifacts out;
  std::ostringstream trace_out;
  dmpc::obs::JsonlTraceSink sink(&trace_out, /*include_wall_time=*/false);
  dmpc::obs::TraceSession session(&sink);
  dmpc::SolveOptions options;
  options.threads = threads;
  options.trace = &session;
  const auto t0 = Clock::now();
  const auto solution = dmpc::Solver(options).mis(g);
  out.ms = ms_since(t0);
  session.finish();
  out.in_set = solution.in_set;
  out.report_json = to_json(solution.report).dump();
  out.trace = trace_out.str();
  return out;
}

void bench_end_to_end(std::uint64_t n, std::uint32_t threads) {
  // Dense enough for the sparsification path, whose seed searches dominate.
  const auto g = dmpc::graph::gnm(static_cast<dmpc::graph::NodeId>(n),
                                  static_cast<dmpc::graph::EdgeId>(16 * n),
                                  /*seed=*/23);
  const auto serial = run_solve(g, 1);
  const auto parallel = run_solve(g, threads);
  report("solve_mis_end_to_end", serial.ms, parallel.ms,
         serial.in_set == parallel.in_set &&
             serial.report_json == parallel.report_json &&
             serial.trace == parallel.trace);
}

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const bool quick = args.has("quick");
  g_json = args.has("json");
  const auto n =
      static_cast<std::uint64_t>(args.get_int("n", quick ? 20000 : 100000));
  auto threads = static_cast<std::uint32_t>(args.get_int("threads", 0));
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  if (!g_json) {
    std::printf("== E17 host-parallel engine: n=%llu, threads=%u%s ==\n",
                static_cast<unsigned long long>(n), threads,
                quick ? " (quick)" : "");
  }
  bench_seed_search(/*seed_count=*/quick ? 4096 : 32768,
                    /*terms=*/quick ? 512 : 2048, threads);
  bench_graph_build(n, threads);
  bench_end_to_end(quick ? 256 : 512, threads);
  if (g_json) {
    const auto doc =
        dmpc::bench::bench_envelope("e17", "host-parallel engine speedup",
                                    quick, args.get("commit", ""))
            .set("n", n)
            .set("threads", static_cast<std::uint64_t>(threads))
            .set("all_identical", true)
            .set("sections", std::move(g_sections));
    std::printf("%s\n", doc.dump().c_str());
  } else {
    std::printf("all identity checks passed\n");
  }
  return 0;
}
