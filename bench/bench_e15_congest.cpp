// E15 — the §6 extension: derandomized Luby in CONGEST.
//
// The deterministic per-phase cost is O(D + K) (BFS-tree seed voting) vs
// the randomized baseline's O(1); the experiment sweeps graph diameter at
// fixed size to expose the D-dependence, and edge density at fixed diameter
// for the phase-count shape.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "congest/congest_mis.hpp"

namespace {

void BM_CongestDiameterSweep(benchmark::State& state) {
  const auto kind = static_cast<int>(state.range(0));
  dmpc::graph::Graph g;
  const char* label = "";
  switch (kind) {
    case 0: g = dmpc::graph::star(1023); label = "star(D=2)"; break;
    case 1: g = dmpc::graph::grid(32, 32); label = "grid(D~62)"; break;
    default: g = dmpc::graph::path(1024); label = "path(D=1023)"; break;
  }
  std::uint64_t det_rounds = 0, rand_rounds = 0, phases = 0;
  std::uint32_t depth = 0;
  for (auto _ : state) {
    const auto det = dmpc::congest::congest_mis(g);
    det_rounds = det.metrics.rounds();
    phases = det.phases;
    depth = det.bfs_depth;
    rand_rounds = dmpc::congest::luby_mis_congest(g, 1).metrics.rounds();
  }
  state.SetLabel(label);
  state.counters["bfs_depth"] = static_cast<double>(depth);
  state.counters["det_rounds"] = static_cast<double>(det_rounds);
  state.counters["rand_rounds"] = static_cast<double>(rand_rounds);
  state.counters["phases"] = static_cast<double>(phases);
}

void BM_CongestDensitySweep(benchmark::State& state) {
  const auto avg_degree = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t n = 1024;
  const auto g = dmpc::graph::gnm(
      static_cast<dmpc::graph::NodeId>(n),
      static_cast<dmpc::graph::EdgeId>(avg_degree * n / 2),
      dmpc::bench::workload_seed(15, avg_degree));
  std::uint64_t det_rounds = 0, phases = 0;
  for (auto _ : state) {
    const auto det = dmpc::congest::congest_mis(g);
    det_rounds = det.metrics.rounds();
    phases = det.phases;
  }
  state.counters["avg_degree"] = static_cast<double>(avg_degree);
  state.counters["det_rounds"] = static_cast<double>(det_rounds);
  state.counters["phases"] = static_cast<double>(phases);
}

}  // namespace

BENCHMARK(BM_CongestDiameterSweep)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_CongestDensitySweep)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
