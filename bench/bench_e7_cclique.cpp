// E7 — Corollary 2: deterministic MIS in CONGESTED CLIQUE in O(log Delta)
// rounds, vs the O(log Delta log n) Censor-Hillel-style baseline.
//
// Sweep Delta at fixed n; the claim's shape is a ~log n gap between the two
// series and a log-Delta trend in ours.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "cclique/cc_mis.hpp"

namespace {

void BM_CcMisVsBaseline(benchmark::State& state) {
  const auto degree = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t n = 2048;
  const auto g = dmpc::graph::random_regular(
      static_cast<dmpc::graph::NodeId>(n), degree,
      dmpc::bench::workload_seed(7, degree));
  std::uint64_t ours = 0, baseline = 0, stages = 0;
  for (auto _ : state) {
    const auto a = dmpc::cclique::cc_mis(g);
    const auto b = dmpc::cclique::cc_mis_censor_hillel(g);
    ours = a.metrics.rounds();
    baseline = b.metrics.rounds();
    stages = a.stages;
  }
  state.counters["delta"] = static_cast<double>(degree);
  state.counters["ours_rounds"] = static_cast<double>(ours);
  state.counters["baseline_rounds"] = static_cast<double>(baseline);
  state.counters["speedup"] =
      static_cast<double>(baseline) / static_cast<double>(std::max<std::uint64_t>(ours, 1));
  state.counters["ours_stages"] = static_cast<double>(stages);
  state.counters["ours_rounds_per_log2delta"] =
      static_cast<double>(ours) /
      std::log2(static_cast<double>(std::max<std::uint32_t>(degree, 2)));
}

}  // namespace

BENCHMARK(BM_CcMisVsBaseline)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
