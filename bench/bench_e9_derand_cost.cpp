// E9 — §2.4: each derandomization step costs O(1) MPC rounds.
//
// Measures the seed-search trial counts inside real pipeline runs: the
// number of candidate seeds evaluated per sparsification stage and per
// selection step. The claim's shape: trials are small constants independent
// of n (each O(1)-round batch evaluates many candidates in parallel).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "support/stats.hpp"

namespace {

void BM_SelectionTrials(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/9);
  dmpc::RunningStats mm_trials, mis_trials;
  for (auto _ : state) {
    const auto mm = dmpc::matching::det_maximal_matching(
        g, dmpc::matching::DetMatchingConfig{});
    for (const auto& r : mm.reports) {
      mm_trials.add(static_cast<double>(r.selection_trials));
    }
    const auto mis = dmpc::mis::det_mis(g, dmpc::mis::DetMisConfig{});
    for (const auto& r : mis.reports) {
      mis_trials.add(static_cast<double>(r.selection_trials));
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["mm_mean_trials"] = mm_trials.mean();
  state.counters["mm_max_trials"] = mm_trials.max();
  state.counters["mis_mean_trials"] = mis_trials.mean();
  state.counters["mis_max_trials"] = mis_trials.max();
}

void BM_SparsifyTrials(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  // Dense graph to force stages.
  const auto g = dmpc::graph::gnm(
      static_cast<dmpc::graph::NodeId>(n),
      static_cast<dmpc::graph::EdgeId>(n * n / 16),
      dmpc::bench::workload_seed(9, n));
  dmpc::RunningStats trials, windows;
  for (auto _ : state) {
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = 1 << 16;
    cc.num_machines = 1 << 10;
    dmpc::mpc::Cluster cluster(cc);
    dmpc::sparsify::Params params;
    params.n = g.num_nodes();
    params.inv_delta = 8;
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good =
        dmpc::sparsify::select_matching_good_set(cluster, params, g, alive);
    const auto sparse = dmpc::sparsify::sparsify_edges(
        cluster, params, g, good, dmpc::sparsify::SparsifyConfig{});
    for (const auto& r : sparse.stages) {
      trials.add(static_cast<double>(r.trials));
      windows.add(r.window_multiplier);
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["stage_mean_trials"] =
      trials.count() ? trials.mean() : 0.0;
  state.counters["stage_max_trials"] = trials.count() ? trials.max() : 0.0;
  state.counters["mean_window_multiplier"] =
      windows.count() ? windows.mean() : 0.0;
}

}  // namespace

BENCHMARK(BM_SelectionTrials)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SparsifyTrials)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
