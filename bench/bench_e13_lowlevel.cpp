// E13 — the Lemma-4 primitives are realizable in-model: the genuine
// message-passing implementations (mpc/lowlevel) against the charged
// primitive layer, on the same cluster geometry.
//
// Reported per row: rounds actually consumed by the message-passing
// implementation vs. rounds charged by the accounting layer, and the peak
// machine load vs. S. The claim: same order (a small constant factor), with
// the peak always within S.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "mpc/lowlevel.hpp"
#include "mpc/primitives.hpp"
#include "support/rng.hpp"

namespace {

using dmpc::mpc::Cluster;
using dmpc::mpc::ClusterConfig;
using dmpc::mpc::Word;

std::vector<Word> random_words(std::size_t count, std::uint64_t seed) {
  dmpc::Rng rng(seed);
  std::vector<Word> v(count);
  for (auto& x : v) x = rng.next_below(1u << 30);
  return v;
}

void BM_PrefixSumLayers(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto s = static_cast<std::uint64_t>(state.range(1));
  ClusterConfig config;
  config.machine_space = s;
  config.num_machines = 1 << 16;
  const auto input = random_words(n, n + s);
  std::uint64_t real_rounds = 0, charged_rounds = 0, peak = 0;
  for (auto _ : state) {
    Cluster real(config);
    const auto out = dmpc::mpc::lowlevel::prefix_sum(real, input);
    benchmark::DoNotOptimize(out.data());
    real_rounds = real.metrics().rounds();
    peak = real.metrics().peak_machine_load();
    Cluster charged(config);
    const auto ref = dmpc::mpc::prefix_sum_exclusive(charged, input);
    benchmark::DoNotOptimize(ref.data());
    charged_rounds = charged.metrics().rounds();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["S"] = static_cast<double>(s);
  state.counters["real_rounds"] = static_cast<double>(real_rounds);
  state.counters["charged_rounds"] = static_cast<double>(charged_rounds);
  state.counters["peak_load"] = static_cast<double>(peak);
  state.counters["real_over_charged"] =
      static_cast<double>(real_rounds) /
      static_cast<double>(std::max<std::uint64_t>(charged_rounds, 1));
}

void BM_SortLayers(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto s = static_cast<std::uint64_t>(state.range(1));
  ClusterConfig config;
  config.machine_space = s;
  config.num_machines = 1 << 16;
  const auto input = random_words(n, 3 * n + s);
  std::uint64_t real_rounds = 0, charged_rounds = 0, peak = 0;
  for (auto _ : state) {
    Cluster real(config);
    auto out = dmpc::mpc::lowlevel::sort(real, input);
    benchmark::DoNotOptimize(out.data());
    real_rounds = real.metrics().rounds();
    peak = real.metrics().peak_machine_load();
    Cluster charged(config);
    auto copy = input;
    dmpc::mpc::dsort(charged, copy, std::less<>{});
    charged_rounds = charged.metrics().rounds();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["S"] = static_cast<double>(s);
  state.counters["real_rounds"] = static_cast<double>(real_rounds);
  state.counters["charged_rounds"] = static_cast<double>(charged_rounds);
  state.counters["peak_load"] = static_cast<double>(peak);
}

}  // namespace

BENCHMARK(BM_PrefixSumLayers)
    ->ArgsProduct({{1000, 10000, 100000}, {64, 256}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
// Sort capacity: the single-level splitter gather needs block + 2M <= S,
// i.e. n <= ~3 S^2 / 64; the sweep stays inside it.
BENCHMARK(BM_SortLayers)
    ->Args({1000, 256})
    ->Args({3000, 256})
    ->Args({4000, 512})
    ->Args({12000, 512})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
