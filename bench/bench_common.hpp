// Shared helpers for the experiment benchmarks (E1..E12).
//
// Every benchmark reports model-level quantities (MPC rounds, iterations,
// peak machine load, progress fractions) as google-benchmark counters, so a
// run regenerates the experiment's "table": one row per argument point.
// Wall-clock time is incidental — the paper's claims are about the cost
// model, not this simulator's speed.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>

#include "graph/generators.hpp"

namespace dmpc::bench {

/// Deterministic workload seed per (experiment, argument) pair so rows are
/// reproducible but not identical across sweep points.
inline std::uint64_t workload_seed(std::uint64_t experiment,
                                   std::uint64_t arg) {
  return experiment * 1000003ULL + arg * 10007ULL + 1;
}

/// The standard sweep graph: G(n, 8n) — dense enough that the sparsification
/// path engages, sparse enough to sweep n comfortably.
inline graph::Graph sweep_gnm(std::uint64_t n, std::uint64_t experiment) {
  return graph::gnm(static_cast<graph::NodeId>(n),
                    static_cast<graph::EdgeId>(8 * n),
                    workload_seed(experiment, n));
}

}  // namespace dmpc::bench
