// E20: storage-fault recovery — overhead and identity under injected I/O
// faults.
//
// The storage recovery ladder (docs/STORAGE.md, "Integrity & degraded
// mode") promises that any admissible IoFaultPlan whose events resolve
// within the RecoveryOptions budget yields byte-identical solutions and
// reports (modulo the recovery ledger) to the fault-free open. This bench
// walks the ladder end to end on one shard directory: a clean verified
// open, transient open-time failures absorbed by retries, an injected
// checksum flip that heals on retry, persistent verify-time corruption
// forcing a quarantine re-read, and an exhausted mmap budget degrading to
// the in-memory backend. Every scenario's solution is checked against the
// clean run, and the (fully deterministic) recovery ledger counters are the
// model fields tools/scaling_check gates against the committed baseline;
// the "identical" flag is gated by the e20 envelope (it must be 1 — a 0
// means recovery changed an answer, which is the one unforgivable
// regression).
//
//   ./bench_e20_storage_faults [--quick] [--json] [--commit=<sha>]
//
// With --json the artifact (bench_json.hpp envelope, string axis
// "scenario") goes to stdout; CI redirects it to BENCH_E20.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "bench_json.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "mpc/io_faults.hpp"
#include "mpc/shard_format.hpp"
#include "mpc/storage.hpp"
#include "support/options.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using dmpc::mpc::IoFaultKind;
using dmpc::mpc::IoFaultPlan;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Scenario {
  const char* name;
  IoFaultPlan plan;
  bool degrade = false;  ///< Open through the fallback path, not mmap.
};

struct ScenarioResult {
  std::string name;
  dmpc::mpc::IoRecoveryStats ledger;
  bool identical = false;
  std::size_t mis_size = 0;
  std::uint64_t mpc_rounds = 0;
  double wall_ms = 0.0;
};

/// Report JSON with the recovery ledger zeroed: the identity the ladder
/// promises is "everything except the recovery block".
std::string comparable_report(const dmpc::MisSolution& solution) {
  auto report = solution.report;
  report.recovery = dmpc::mpc::RecoveryStats{};
  return to_json(report).dump();
}

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const bool quick = args.has("quick");
  const bool json = args.has("json");

  const fs::path dir = fs::temp_directory_path() / "dmpc_bench_e20";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // One deterministic instance, sharded small enough that every scenario
  // touches several shard files. Sized so the full run exercises more
  // verify work; model fields stay identical either way because only the
  // instance below is gated (quick == full graph for determinism).
  const std::uint64_t n = 4000, m = 32000;
  const dmpc::graph::Graph g = dmpc::graph::gnm(n, m, 20);
  const std::string edge_path = (dir / "g.txt").string();
  dmpc::graph::write_edge_list_file(g, edge_path);
  dmpc::mpc::ShardBuildOptions build;
  build.shard_words = 8192;
  const std::string shard_dir = (dir / "shards").string();
  const auto build_stats = dmpc::mpc::shard_build(edge_path, shard_dir, build);

  IoFaultPlan transient;
  transient.add({IoFaultKind::kEio, /*shard=*/0, dmpc::mpc::kAccessOpen,
                 /*delay=*/1, /*attempts=*/2});
  transient.add({IoFaultKind::kShortRead, /*shard=*/1, dmpc::mpc::kAccessOpen,
                 /*delay=*/1, /*attempts=*/1});
  transient.add({IoFaultKind::kSlow, /*shard=*/0, dmpc::mpc::kAccessVerify,
                 /*delay=*/3, /*attempts=*/1});
  IoFaultPlan heal;
  heal.add({IoFaultKind::kCorrupt, /*shard=*/0, dmpc::mpc::kAccessVerify,
            /*delay=*/1, /*attempts=*/1});
  IoFaultPlan quarantine;
  quarantine.add({IoFaultKind::kCorrupt, /*shard=*/1, dmpc::mpc::kAccessVerify,
                  /*delay=*/1, /*attempts=*/4});
  IoFaultPlan exhaust_mmap;
  exhaust_mmap.add({IoFaultKind::kMapFail, /*shard=*/0, dmpc::mpc::kAccessOpen,
                    /*delay=*/1,
                    /*attempts=*/dmpc::mpc::RecoveryOptions::kMaxRetries + 1});

  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean", IoFaultPlan{}, false});
  scenarios.push_back({"transient", transient, false});
  scenarios.push_back({"heal", heal, false});
  scenarios.push_back({"quarantine", quarantine, false});
  scenarios.push_back({"degraded", exhaust_mmap, true});

  // The fault-free reference every scenario must reproduce byte-for-byte.
  const dmpc::Solver solver;
  const auto reference = solver.mis(g);
  const std::string reference_report = comparable_report(reference);

  if (!json) {
    std::printf("== E20 storage-fault recovery: n=%llu m=%llu shards=%llu "
                "%s==\n",
                static_cast<unsigned long long>(build_stats.n),
                static_cast<unsigned long long>(build_stats.m),
                static_cast<unsigned long long>(build_stats.shards),
                quick ? "(quick) " : "");
  }

  std::vector<ScenarioResult> results;
  for (const Scenario& scenario : scenarios) {
    ScenarioResult result;
    result.name = scenario.name;
    const auto t0 = Clock::now();
    std::unique_ptr<dmpc::mpc::Storage> storage;
    if (scenario.degrade) {
      dmpc::mpc::StorageOptions options;
      options.backend = dmpc::mpc::StorageBackend::kMmap;
      options.shard_dir = shard_dir;
      options.verify = dmpc::mpc::VerifyMode::kOpen;
      options.fallback = dmpc::mpc::FallbackMode::kMemory;
      storage = dmpc::mpc::open_storage(options, edge_path, {}, scenario.plan);
    } else {
      storage = dmpc::mpc::MmapShardStorage::open(
          shard_dir, {}, dmpc::mpc::VerifyMode::kOpen, scenario.plan);
    }
    const auto solution = solver.mis(*storage);
    result.wall_ms = ms_since(t0);
    result.ledger = storage->io_recovery();
    result.identical = solution.in_set == reference.in_set &&
                       comparable_report(solution) == reference_report;
    for (bool b : solution.in_set) result.mis_size += b;
    result.mpc_rounds = solution.report.metrics.rounds();
    results.push_back(result);

    if (!json) {
      std::printf(
          "%-10s open+solve=%7.1fms  faults=%llu retries=%llu backoff=%llu "
          "checksum_fail=%llu quarantined=%llu degraded=%llu verified=%llu "
          "identical=%s\n",
          result.name.c_str(), result.wall_ms,
          static_cast<unsigned long long>(result.ledger.io_faults_injected),
          static_cast<unsigned long long>(result.ledger.retries),
          static_cast<unsigned long long>(result.ledger.backoff_units),
          static_cast<unsigned long long>(result.ledger.checksum_failures),
          static_cast<unsigned long long>(result.ledger.quarantined_shards),
          static_cast<unsigned long long>(result.ledger.degraded),
          static_cast<unsigned long long>(result.ledger.shards_verified),
          result.identical ? "yes" : "NO");
    }
  }

  bool all_identical = true;
  for (const auto& result : results) all_identical &= result.identical;
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: a recovered solve differs from the fault-free run\n");
    fs::remove_all(dir);
    return 1;
  }

  if (json) {
    dmpc::Json points = dmpc::Json::array();
    for (const auto& result : results) {
      points.push(
          dmpc::Json::object()
              .set("axis_value", result.name)
              .set("model",
                   dmpc::Json::object()
                       .set("n", build_stats.n)
                       .set("m", build_stats.m)
                       .set("shards", build_stats.shards)
                       .set("io_faults_injected",
                            result.ledger.io_faults_injected)
                       .set("retries", result.ledger.retries)
                       .set("backoff_units", result.ledger.backoff_units)
                       .set("checksum_failures",
                            result.ledger.checksum_failures)
                       .set("quarantined_shards",
                            result.ledger.quarantined_shards)
                       .set("degraded", result.ledger.degraded)
                       .set("shards_verified", result.ledger.shards_verified)
                       .set("mis_size",
                            static_cast<std::uint64_t>(result.mis_size))
                       .set("mpc_rounds", result.mpc_rounds)
                       .set("identical", result.identical ? 1 : 0))
              .set("wall", dmpc::bench::wall_stats(result.wall_ms)));
    }
    auto doc = dmpc::bench::bench_envelope(
                   "e20",
                   "Storage-fault recovery: ladder overhead + identity",
                   quick, args.get("commit", ""))
                   .set("axis", "scenario")
                   .set("points", points);
    std::printf("%s\n", doc.dump(2).c_str());
  }

  fs::remove_all(dir);
  return 0;
}
