// bench_runner — unified experiment driver: runs any subset of E1..E18 and
// writes one machine-readable BENCH_<EXP>.json artifact per experiment.
//
//   ./bench_runner --experiments=e1,e2,e8 --out=artifacts
//                  [--quick] [--threads=1] [--commit=<sha>] [--progress]
//   ./bench_runner --experiments=all --out=artifacts --quick
//
// Each artifact uses the bench_json.hpp envelope plus:
//   "axis":   name of the sweep variable ("n", "delta", "family", ...)
//   "threads": host threads used for Solver-driven experiments
//   "points": [{"axis_value": <int|string>,
//               "model":    {<integer-exact, thread-independent values>},
//               "registry": {<model section of the metrics-registry delta
//                             for this point (obs/metrics_registry.hpp)>},
//               "wall":     {"wall_ms", "peak_rss_bytes"},
//               "profile":  {<per-round load-skew timeline; E1/E2 only
//                             (obs/profiler.hpp); model-deterministic and
//                             gated by tools/trace_analyze --gate>}}, ...]
//
// Determinism contract: for a fixed (--experiments, --quick) configuration
// the "model" and "registry" subtrees are byte-identical across runs and
// across --threads values; "wall" and "toolchain" are not. tools/
// scaling_check gates only on model fields, fitting the theorem envelopes
// (E1/E2: rounds vs log n; E6: rounds vs log Delta; E8: peak load <= S)
// and comparing against bench/baselines/.
//
// Fraction-valued quantities are stored as parts-per-million integers
// (bench::ppm) so the golden subtrees contain no floats.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "apps/reductions.hpp"
#include "baselines/israeli_itai.hpp"
#include "baselines/luby_matching.hpp"
#include "baselines/luby_mis.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "cclique/cc_mis.hpp"
#include "congest/congest_mis.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lowdeg/lowdeg_solver.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "mpc/cluster.hpp"
#include "mpc/lowlevel.hpp"
#include "mpc/primitives.hpp"
#include "obs/events.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "sparsify/edge_sparsifier.hpp"
#include "sparsify/good_nodes.hpp"
#include "sparsify/node_sparsifier.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using dmpc::Json;
using dmpc::graph::EdgeId;
using dmpc::graph::Graph;
using dmpc::graph::NodeId;

struct RunConfig {
  bool quick = false;
  bool progress = false;
  std::uint32_t threads = 1;
};

// With --progress, every solver-driven sweep point streams throttled
// lifecycle lines to stderr (full runs take minutes; this shows which
// point is live). The bus is deliberately process-long: it never touches
// the registry or the report's model/registry blocks, so artifacts stay
// byte-identical with the flag on or off.
dmpc::obs::EventBus* progress_bus(const RunConfig& cfg) {
  if (!cfg.progress) return nullptr;
  static dmpc::obs::ProgressLineSink sink(&std::cerr);
  static dmpc::obs::EventBus bus;
  static const bool subscribed = bus.subscribe(&sink);
  (void)subscribed;
  return &bus;
}

/// Wraps one sweep point: snapshots the global registry before the body so
/// the point's "registry" block is exactly this point's model-section delta.
class PointScope {
 public:
  PointScope()
      : before_(dmpc::obs::MetricsRegistry::global().snapshot()),
        t0_(Clock::now()) {}

  /// Assemble the point row. `model` carries the experiment's own integer
  /// fields; the registry delta and wall stats are appended here.
  Json finish(Json axis_value, Json model) const {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0_).count();
    auto& reg = dmpc::obs::MetricsRegistry::global();
    dmpc::obs::sample_host(reg);
    const auto delta =
        dmpc::obs::MetricsSnapshot::delta(reg.snapshot(), before_);
    // include_zero=false: which zero-valued metrics exist depends on which
    // experiments ran earlier in this process, and the registry block must
    // not (see obs/metrics_registry.hpp).
    return Json::object()
        .set("axis_value", std::move(axis_value))
        .set("model", std::move(model))
        .set("registry",
             dmpc::obs::to_json_section(delta, dmpc::obs::MetricSection::kModel,
                                        /*include_zero=*/false))
        .set("wall", dmpc::bench::wall_stats(wall_ms));
  }

 private:
  dmpc::obs::MetricsSnapshot before_;
  Clock::time_point t0_;
};

std::vector<std::uint64_t> sweep_n(const RunConfig& cfg) {
  if (cfg.quick) return {256, 512, 1024, 2048};
  return {256, 512, 1024, 2048, 4096, 8192};
}

dmpc::SolveOptions solver_options(const RunConfig& cfg) {
  dmpc::SolveOptions options;
  options.threads = cfg.threads;
  options.events = progress_bus(cfg);
  return options;
}

// ---------------------------------------------------------------- E1 / E2

Json e1_points(const RunConfig& cfg) {
  Json points = Json::array();
  for (const auto n : sweep_n(cfg)) {
    const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/1);
    PointScope scope;
    auto options = solver_options(cfg);
    options.profile = true;
    const auto solution = dmpc::Solver(options).maximal_matching(g);
    const auto& r = solution.report;
    points.push(scope.finish(
        Json(n), Json::object()
                     .set("iterations", r.iterations)
                     .set("mpc_rounds", r.metrics.rounds())
                     .set("peak_load", r.metrics.peak_machine_load())
                     .set("communication", r.metrics.total_communication())
                     .set("matching_size",
                          static_cast<std::uint64_t>(solution.matching.size())))
                    .set("profile", to_json(r.profile)));
  }
  return points;
}

Json e2_points(const RunConfig& cfg) {
  Json points = Json::array();
  for (const auto n : sweep_n(cfg)) {
    const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/2);
    PointScope scope;
    auto options = solver_options(cfg);
    options.profile = true;
    const auto solution = dmpc::Solver(options).mis(g);
    const auto& r = solution.report;
    std::uint64_t size = 0;
    for (bool b : solution.in_set) size += b;
    points.push(scope.finish(
        Json(n), Json::object()
                     .set("iterations", r.iterations)
                     .set("mpc_rounds", r.metrics.rounds())
                     .set("peak_load", r.metrics.peak_machine_load())
                     .set("communication", r.metrics.total_communication())
                     .set("mis_size", size))
                    .set("profile", to_json(r.profile)));
  }
  return points;
}

// --------------------------------------------------------------------- E3

Json e3_points(const RunConfig& cfg) {
  const std::uint64_t n = cfg.quick ? 1024 : 2048;
  struct Fam {
    const char* name;
    Graph g;
  };
  std::vector<Fam> fams;
  fams.push_back({"gnm", dmpc::graph::gnm(n, 8 * n, 31)});
  fams.push_back({"power_law", dmpc::graph::power_law(n, 6 * n, 2.5, 32)});
  fams.push_back(
      {"bipartite", dmpc::graph::random_bipartite(n / 2, n / 2, 6 * n, 33)});
  fams.push_back({"regular", dmpc::graph::random_regular(n, 16, 34)});
  Json points = Json::array();
  for (const auto& fam : fams) {
    PointScope scope;
    dmpc::sparsify::Params params;
    params.n = fam.g.num_nodes();
    params.inv_delta = 16;
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = 1 << 16;
    cc.num_machines = 1 << 10;
    dmpc::mpc::Cluster cluster(cc);
    std::vector<bool> alive(fam.g.num_nodes(), true);
    const auto mm =
        dmpc::sparsify::select_matching_good_set(cluster, params, fam.g, alive);
    const auto mis =
        dmpc::sparsify::select_mis_good_set(cluster, params, fam.g, alive);
    points.push(scope.finish(
        Json(std::string(fam.name)),
        Json::object()
            .set("bound_half_delta_ppm", dmpc::bench::ppm(params.delta() / 2))
            .set("matching_b_mass_ppm",
                 dmpc::bench::ppm(double(mm.b_degree_mass) /
                                  double(2 * mm.alive_edges)))
            .set("mis_b_mass_ppm",
                 dmpc::bench::ppm(double(mis.b_degree_mass) /
                                  double(2 * mis.alive_edges)))));
  }
  return points;
}

// --------------------------------------------------------------------- E4

Json e4_points(const RunConfig& cfg) {
  Json points = Json::array();
  const std::vector<std::uint64_t> ns =
      cfg.quick ? std::vector<std::uint64_t>{512, 1024}
                : std::vector<std::uint64_t>{512, 1024, 2048};
  for (const std::uint64_t n : ns) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(n * n / 16), 41);
    PointScope scope;
    dmpc::sparsify::Params params;
    params.n = g.num_nodes();
    params.inv_delta = 8;
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = 1 << 16;
    cc.num_machines = 1 << 10;
    Json model = Json::object();
    {
      dmpc::mpc::Cluster cluster(cc);
      std::vector<bool> alive(g.num_nodes(), true);
      const auto good =
          dmpc::sparsify::select_matching_good_set(cluster, params, g, alive);
      const auto sp =
          dmpc::sparsify::sparsify_edges(cluster, params, g, good, {});
      double wi = 0, wii = 2;
      for (const auto& s : sp.stages) {
        wi = std::max(wi, s.invariant_degree_ratio);
        wii = std::min(wii, s.invariant_xv_ratio);
      }
      model.set("edges_stages", static_cast<std::uint64_t>(sp.stages.size()))
          .set("edges_max_degree", static_cast<std::uint64_t>(sp.max_degree))
          .set("edges_worst_deg_ratio_ppm", dmpc::bench::ppm(wi))
          .set("edges_worst_xv_ratio_ppm", dmpc::bench::ppm(wii));
    }
    {
      dmpc::mpc::Cluster cluster(cc);
      std::vector<bool> alive(g.num_nodes(), true);
      const auto good =
          dmpc::sparsify::select_mis_good_set(cluster, params, g, alive);
      const auto sp =
          dmpc::sparsify::sparsify_nodes(cluster, params, g, alive, good, {});
      double wi = 0, wii = 2;
      for (const auto& s : sp.stages) {
        wi = std::max(wi, s.invariant_degree_ratio);
        wii = std::min(wii, s.invariant_xv_ratio);
      }
      model.set("nodes_stages", static_cast<std::uint64_t>(sp.stages.size()))
          .set("nodes_max_degree", static_cast<std::uint64_t>(sp.max_q_degree))
          .set("nodes_worst_deg_ratio_ppm", dmpc::bench::ppm(wi))
          .set("nodes_worst_xv_ratio_ppm", dmpc::bench::ppm(wii));
    }
    model.set("degree_cap", params.degree_cap());
    points.push(scope.finish(Json(n), std::move(model)));
  }
  return points;
}

// --------------------------------------------------------------------- E5

Json e5_points(const RunConfig& cfg) {
  const std::uint64_t n = cfg.quick ? 1024 : 2048;
  struct Fam {
    const char* name;
    Graph g;
  };
  std::vector<Fam> fams;
  fams.push_back({"gnm", dmpc::graph::gnm(n, 8 * n, 51)});
  fams.push_back({"power_law", dmpc::graph::power_law(n, 6 * n, 2.5, 52)});
  fams.push_back({"regular", dmpc::graph::random_regular(n, 16, 53)});
  Json points = Json::array();
  for (const auto& fam : fams) {
    PointScope scope;
    Json model = Json::object();
    {
      const auto r = dmpc::matching::det_maximal_matching(fam.g, {});
      dmpc::RunningStats frac;
      for (const auto& rep : r.reports) frac.add(rep.progress_fraction);
      model.set("matching_min_removed_ppm", dmpc::bench::ppm(frac.min()))
          .set("matching_mean_removed_ppm", dmpc::bench::ppm(frac.mean()));
    }
    {
      const auto r = dmpc::mis::det_mis(fam.g, {});
      dmpc::RunningStats frac;
      for (const auto& rep : r.reports) frac.add(rep.progress_fraction);
      model.set("mis_min_removed_ppm", dmpc::bench::ppm(frac.min()))
          .set("mis_mean_removed_ppm", dmpc::bench::ppm(frac.mean()));
    }
    points.push(scope.finish(Json(std::string(fam.name)), std::move(model)));
  }
  return points;
}

// --------------------------------------------------------------------- E6

Json e6_points(const RunConfig& cfg) {
  const std::uint64_t n = cfg.quick ? 1024 : 4096;
  const std::vector<std::uint32_t> deltas =
      cfg.quick ? std::vector<std::uint32_t>{2, 4, 8, 16}
                : std::vector<std::uint32_t>{2, 4, 8, 16, 32};
  Json points = Json::array();
  for (const std::uint32_t d : deltas) {
    const auto g =
        dmpc::graph::random_regular(static_cast<NodeId>(n), d, 600 + d);
    PointScope scope;
    const auto low = dmpc::lowdeg::lowdeg_mis(g, {});
    const auto gen = dmpc::mis::det_mis(g, {});
    points.push(scope.finish(
        Json(static_cast<std::uint64_t>(d)),
        Json::object()
            .set("lowdeg_rounds", low.metrics.rounds())
            .set("stages", low.stages)
            .set("phases_per_stage",
                 static_cast<std::uint64_t>(low.phases_per_stage))
            .set("general_rounds", gen.metrics.rounds())));
  }
  return points;
}

// --------------------------------------------------------------------- E7

Json e7_points(const RunConfig& cfg) {
  const std::uint64_t n = cfg.quick ? 1024 : 2048;
  Json points = Json::array();
  for (const std::uint32_t d : {2u, 4u, 8u, 16u, 32u}) {
    const auto g =
        dmpc::graph::random_regular(static_cast<NodeId>(n), d, 800 + d);
    PointScope scope;
    const auto ours = dmpc::cclique::cc_mis(g);
    const auto base = dmpc::cclique::cc_mis_censor_hillel(g);
    points.push(scope.finish(Json(static_cast<std::uint64_t>(d)),
                             Json::object()
                                 .set("ours_rounds", ours.metrics.rounds())
                                 .set("baseline_rounds", base.metrics.rounds())));
  }
  return points;
}

// --------------------------------------------------------------------- E8

Json e8_points(const RunConfig& cfg) {
  const std::vector<std::uint64_t> ns =
      cfg.quick ? std::vector<std::uint64_t>{512, 1024, 2048}
                : std::vector<std::uint64_t>{512, 1024, 2048, 4096};
  Json points = Json::array();
  for (const std::uint64_t n : ns) {
    for (const std::uint64_t eps_tenths : {3ull, 5ull, 7ull}) {
      const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/8);
      dmpc::mis::DetMisConfig config;
      config.eps = double(eps_tenths) / 10.0;
      const auto cc =
          dmpc::mis::cluster_config_for(config, g.num_nodes(), g.num_edges());
      PointScope scope;
      auto options = solver_options(cfg);
      options.eps = config.eps;
      const auto solution = dmpc::Solver(options).mis(g);
      const auto& m = solution.report.metrics;
      points.push(scope.finish(
          Json(n), Json::object()
                       .set("eps_tenths", eps_tenths)
                       .set("s_budget", cc.machine_space)
                       .set("machines", cc.num_machines)
                       .set("peak_load", m.peak_machine_load())
                       .set("communication", m.total_communication())));
    }
  }
  return points;
}

// --------------------------------------------------------------------- E9

Json e9_points(const RunConfig& cfg) {
  const std::vector<std::uint64_t> ns =
      cfg.quick ? std::vector<std::uint64_t>{512, 1024}
                : std::vector<std::uint64_t>{512, 1024, 2048};
  Json points = Json::array();
  for (const std::uint64_t n : ns) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(8 * n), 1000 + n);
    PointScope scope;
    const auto mm = dmpc::matching::det_maximal_matching(g, {});
    const auto mis = dmpc::mis::det_mis(g, {});
    std::uint64_t mm_trials = 0, mis_trials = 0;
    for (const auto& r : mm.reports) mm_trials += r.selection_trials;
    for (const auto& r : mis.reports) mis_trials += r.selection_trials;
    const auto dense = dmpc::graph::gnm(
        static_cast<NodeId>(n), static_cast<EdgeId>(n * n / 16), 1100 + n);
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = 1 << 16;
    cc.num_machines = 1 << 10;
    dmpc::mpc::Cluster cluster(cc);
    dmpc::sparsify::Params params;
    params.n = dense.num_nodes();
    params.inv_delta = 8;
    std::vector<bool> alive(dense.num_nodes(), true);
    const auto good =
        dmpc::sparsify::select_matching_good_set(cluster, params, dense, alive);
    const auto sp =
        dmpc::sparsify::sparsify_edges(cluster, params, dense, good, {});
    std::uint64_t max_trials = 0;
    for (const auto& s : sp.stages) max_trials = std::max(max_trials, s.trials);
    points.push(scope.finish(
        Json(n), Json::object()
                     .set("matching_selection_trials", mm_trials)
                     .set("matching_iterations", mm.iterations)
                     .set("mis_selection_trials", mis_trials)
                     .set("mis_iterations", mis.iterations)
                     .set("sparsify_stage_trials_max", max_trials)));
  }
  return points;
}

// -------------------------------------------------------------------- E10

Json e10_points(const RunConfig& cfg) {
  Json points = Json::array();
  for (const auto n : sweep_n(cfg)) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(8 * n), 1200 + n);
    PointScope scope;
    points.push(scope.finish(
        Json(n),
        Json::object()
            .set("det_matching_iterations",
                 dmpc::matching::det_maximal_matching(g, {}).iterations)
            .set("luby_matching_iterations",
                 dmpc::baselines::luby_matching(g, 1).iterations)
            .set("israeli_itai_iterations",
                 dmpc::baselines::israeli_itai(g, 1).iterations)
            .set("det_mis_iterations", dmpc::mis::det_mis(g, {}).iterations)
            .set("luby_mis_iterations",
                 dmpc::baselines::luby_mis(g, 1).iterations)
            .set("luby_mis_pairwise_iterations",
                 dmpc::baselines::luby_mis_pairwise(g, 1).iterations)));
  }
  return points;
}

// -------------------------------------------------------------------- E11

Json e11_points(const RunConfig& cfg) {
  const std::vector<std::uint64_t> ns =
      cfg.quick ? std::vector<std::uint64_t>{512, 1024}
                : std::vector<std::uint64_t>{512, 1024, 2048};
  Json points = Json::array();
  for (const std::uint64_t n : ns) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(n * n / 16), 1300 + n);
    PointScope scope;
    dmpc::matching::DetMatchingConfig config;
    const auto cc = dmpc::matching::cluster_config_for(config, g.num_nodes(),
                                                       g.num_edges());
    auto unchecked = cc;
    unchecked.enforce_space = false;
    dmpc::mpc::Cluster cluster(unchecked);
    const auto params = dmpc::matching::params_for(config, g.num_nodes());
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good =
        dmpc::sparsify::select_matching_good_set(cluster, params, g, alive);
    auto two_hop = [&](const std::vector<bool>& mask) {
      std::vector<std::vector<EdgeId>> inc(g.num_nodes());
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (!mask[e]) continue;
        inc[g.edge(e).u].push_back(e);
        inc[g.edge(e).v].push_back(e);
      }
      std::uint64_t worst = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!good.in_B[v]) continue;
        std::uint64_t words = inc[v].size();
        for (EdgeId e : inc[v]) words += inc[g.other_endpoint(e, v)].size();
        worst = std::max(worst, 2 * words);
      }
      return worst;
    };
    const auto without = two_hop(good.in_E0);
    const auto sp =
        dmpc::sparsify::sparsify_edges(cluster, params, g, good, {});
    const auto with = two_hop(sp.in_Estar);
    points.push(scope.finish(
        Json(n),
        Json::object()
            .set("s_budget", cc.machine_space)
            .set("two_hop_without_estar", without)
            .set("two_hop_with_estar", with)
            .set("fits_without",
                 static_cast<std::uint64_t>(without <= cc.machine_space))
            .set("fits_with",
                 static_cast<std::uint64_t>(with <= cc.machine_space))));
  }
  return points;
}

// -------------------------------------------------------------------- E12

Json e12_points(const RunConfig& cfg) {
  const std::uint64_t n = cfg.quick ? 1024 : 2048;
  const auto m = static_cast<EdgeId>(cfg.quick ? 8192 : 16384);
  Json points = Json::array();
  for (const std::uint64_t b : {1ull, 4ull, 16ull, 64ull}) {
    const auto g = dmpc::graph::gnm(static_cast<NodeId>(n), m, 1500 + b);
    PointScope scope;
    dmpc::matching::DetMatchingConfig config;
    config.selection_batch = b;
    const auto r = dmpc::matching::det_maximal_matching(g, config);
    dmpc::RunningStats frac;
    for (const auto& rep : r.reports) frac.add(rep.progress_fraction);
    points.push(scope.finish(
        Json(b), Json::object()
                     .set("iterations", r.iterations)
                     .set("rounds", r.metrics.rounds())
                     .set("mean_removed_ppm", dmpc::bench::ppm(frac.mean()))));
  }
  return points;
}

// -------------------------------------------------------------------- E13

Json e13_points(const RunConfig& cfg) {
  Json points = Json::array();
  dmpc::Rng rng(77);
  const std::uint64_t psum_n = cfg.quick ? 20000 : 100000;
  for (const std::uint64_t sp : {64ull, 256ull}) {
    std::vector<dmpc::mpc::Word> v(psum_n);
    for (auto& x : v) x = rng.next_below(1u << 30);
    PointScope scope;
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = sp;
    cc.num_machines = 1 << 16;
    dmpc::mpc::Cluster real(cc);
    dmpc::mpc::lowlevel::prefix_sum(real, v);
    dmpc::mpc::Cluster charged(cc);
    dmpc::mpc::prefix_sum_exclusive(charged, v);
    points.push(scope.finish(
        Json("prefix_sum/S=" + std::to_string(sp)),
        Json::object()
            .set("n", psum_n)
            .set("machine_space", sp)
            .set("real_rounds", real.metrics().rounds())
            .set("charged_rounds", charged.metrics().rounds())
            .set("peak_load", real.metrics().peak_machine_load())));
  }
  for (const auto& [n, sp] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{{3000, 256},
                                                            {12000, 512}}) {
    std::vector<dmpc::mpc::Word> v(n);
    for (auto& x : v) x = rng.next_below(1u << 30);
    PointScope scope;
    dmpc::mpc::ClusterConfig cc;
    cc.machine_space = sp;
    cc.num_machines = 1 << 16;
    dmpc::mpc::Cluster real(cc);
    auto a = v;
    dmpc::mpc::lowlevel::sort(real, a);
    dmpc::mpc::Cluster charged(cc);
    auto b = v;
    dmpc::mpc::dsort(charged, b, std::less<>{});
    points.push(scope.finish(
        Json("sample_sort/S=" + std::to_string(sp)),
        Json::object()
            .set("n", n)
            .set("machine_space", sp)
            .set("real_rounds", real.metrics().rounds())
            .set("charged_rounds", charged.metrics().rounds())
            .set("peak_load", real.metrics().peak_machine_load())));
  }
  return points;
}

// -------------------------------------------------------------------- E14

Json e14_points(const RunConfig& cfg) {
  const std::vector<std::uint64_t> ns =
      cfg.quick ? std::vector<std::uint64_t>{256, 512}
                : std::vector<std::uint64_t>{256, 512, 1024};
  Json points = Json::array();
  for (const std::uint64_t n : ns) {
    const auto g = dmpc::graph::random_bipartite(
        static_cast<NodeId>(n / 2), static_cast<NodeId>(n - n / 2),
        static_cast<EdgeId>(4 * n), 1600 + n);
    PointScope scope;
    const auto maximum = dmpc::graph::hopcroft_karp(g);
    const auto cover = dmpc::apps::vertex_cover_2approx(g);
    points.push(scope.finish(
        Json(n), Json::object()
                     .set("cover_size", cover.cover_size)
                     .set("matching_size", cover.matching_size)
                     .set("maximum_matching",
                          static_cast<std::uint64_t>(maximum.size))));
  }
  return points;
}

// -------------------------------------------------------------------- E15

Json e15_points(const RunConfig& cfg) {
  (void)cfg;
  struct Top {
    const char* name;
    Graph g;
  };
  std::vector<Top> tops;
  tops.push_back({"star_1023", dmpc::graph::star(1023)});
  tops.push_back({"grid_32x32", dmpc::graph::grid(32, 32)});
  tops.push_back({"path_1024", dmpc::graph::path(1024)});
  Json points = Json::array();
  for (const auto& top : tops) {
    PointScope scope;
    const auto det = dmpc::congest::congest_mis(top.g);
    const auto rand = dmpc::congest::luby_mis_congest(top.g, 1);
    points.push(scope.finish(
        Json(std::string(top.name)),
        Json::object()
            .set("bfs_depth", static_cast<std::uint64_t>(det.bfs_depth))
            .set("det_rounds", det.metrics.rounds())
            .set("randomized_rounds", rand.metrics.rounds())));
  }
  return points;
}

// -------------------------------------------------------------------- E16

Json e16_points(const RunConfig& cfg) {
  const std::uint64_t n = cfg.quick ? 512 : 1024;
  const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                  static_cast<EdgeId>(8 * n), 1800 + n);
  PointScope scope;
  dmpc::obs::CollectorSink collector;
  dmpc::obs::TraceSession session(&collector);
  auto options = solver_options(cfg);
  options.trace = &session;
  const dmpc::Solver solver(options);
  const auto solution = solver.mis(g);
  session.finish();
  // The solve's registry delta is the aggregate the trace spans roll up to;
  // cross-check the headline counters against the typed report.
  const auto& snap = solver.metrics_snapshot();
  const auto* rounds = snap.find("mpc/rounds");
  const auto* comm = snap.find("mpc/communication");
  DMPC_CHECK(rounds != nullptr && comm != nullptr);
  DMPC_CHECK(static_cast<std::uint64_t>(rounds->value) ==
             solution.report.metrics.rounds());
  DMPC_CHECK(static_cast<std::uint64_t>(comm->value) ==
             solution.report.metrics.total_communication());
  Json points = Json::array();
  points.push(scope.finish(
      Json(n), Json::object()
                   .set("trace_events", session.events_emitted())
                   .set("mpc_rounds", solution.report.metrics.rounds())
                   .set("communication",
                        solution.report.metrics.total_communication())
                   .set("registry_matches_report", std::uint64_t{1})));
  return points;
}

// -------------------------------------------------------------------- E17

Json e17_points(const RunConfig& cfg) {
  const std::uint64_t n = cfg.quick ? 256 : 512;
  const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                  static_cast<EdgeId>(16 * n), /*seed=*/23);
  auto run = [&](std::uint32_t threads) {
    dmpc::SolveOptions options;
    options.threads = threads;
    const dmpc::Solver solver(options);
    const auto solution = solver.mis(g);
    return std::make_pair(solution, to_json(solution.report).dump());
  };
  const auto reference = run(1);
  Json points = Json::array();
  for (const std::uint32_t threads : {1u, 2u, 0u}) {
    PointScope scope;
    const auto [solution, json] = run(threads);
    const bool identical =
        solution.in_set == reference.first.in_set && json == reference.second;
    DMPC_CHECK_MSG(identical, "threads=" << threads
                                         << " output differs from serial");
    points.push(scope.finish(
        Json(static_cast<std::uint64_t>(threads)),
        Json::object()
            .set("mpc_rounds", solution.report.metrics.rounds())
            .set("peak_load", solution.report.metrics.peak_machine_load())
            .set("communication",
                 solution.report.metrics.total_communication())
            .set("identical_to_serial", static_cast<std::uint64_t>(identical))));
  }
  return points;
}

// -------------------------------------------------------------------- E18

Json e18_points(const RunConfig& cfg) {
  const std::uint64_t n = cfg.quick ? 256 : 512;
  const auto g = dmpc::graph::gnm(static_cast<NodeId>(n),
                                  static_cast<EdgeId>(16 * n), /*seed=*/23);
  auto run = [&](const dmpc::mpc::FaultPlan& faults) {
    dmpc::SolveOptions options;
    options.faults = faults;
    const dmpc::Solver solver(options);
    const auto solution = solver.mis(g);
    auto comparable = solution.report;
    comparable.recovery = dmpc::mpc::RecoveryStats{};
    // The registry delta's recovery section varies by plan too; clear it from
    // the comparable serialization the same way.
    return std::make_pair(solution, to_json(comparable).dump());
  };
  const auto baseline = run(dmpc::mpc::FaultPlan{});
  const std::uint64_t total_rounds = baseline.first.report.metrics.rounds();
  auto spread = [&](dmpc::mpc::FaultKind kind, std::uint64_t count,
                    std::uint64_t machines) {
    dmpc::mpc::FaultPlan plan;
    for (std::uint64_t i = 0; i < count; ++i) {
      dmpc::mpc::FaultEvent event;
      event.kind = kind;
      event.round = 1 + (i * total_rounds) / (count + 1);
      event.machine = i % machines;
      event.message = 0;
      plan.add(event);
    }
    return plan;
  };
  const std::uint64_t light = cfg.quick ? 2 : 4;
  struct Scenario {
    const char* name;
    dmpc::mpc::FaultPlan faults;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"crash_light", spread(dmpc::mpc::FaultKind::kCrash, light, 1)});
  scenarios.push_back(
      {"drop_light", spread(dmpc::mpc::FaultKind::kDrop, light, 1)});
  {
    auto mixed = spread(dmpc::mpc::FaultKind::kCrash, light, 16);
    for (const auto kind :
         {dmpc::mpc::FaultKind::kDrop, dmpc::mpc::FaultKind::kStraggler,
          dmpc::mpc::FaultKind::kDuplicate}) {
      const auto part = spread(kind, light, 16);
      for (const auto& e : part.events()) mixed.add(e);
    }
    scenarios.push_back({"mixed", std::move(mixed)});
  }
  Json points = Json::array();
  for (const auto& scenario : scenarios) {
    PointScope scope;
    const auto [solution, json] = run(scenario.faults);
    const bool identical = solution.in_set == baseline.first.in_set &&
                           json == baseline.second;
    DMPC_CHECK_MSG(identical, "scenario '" << scenario.name
                                           << "' differs from fault-free run");
    const auto& rec = solution.report.recovery;
    points.push(scope.finish(
        Json(std::string(scenario.name)),
        Json::object()
            .set("planned_events",
                 static_cast<std::uint64_t>(scenario.faults.events().size()))
            .set("faults_injected", rec.faults_injected)
            .set("retries", rec.retries)
            .set("replayed_rounds", rec.replayed_rounds)
            .set("checkpoints", rec.checkpoints)
            .set("identical_to_fault_free",
                 static_cast<std::uint64_t>(identical))));
  }
  return points;
}

// ------------------------------------------------------------- experiment table

struct Experiment {
  const char* id;     // "e1"
  const char* axis;   // sweep variable name
  const char* title;  // one line, mirrors the bench_eN file comments
  std::function<Json(const RunConfig&)> points;
};

const std::vector<Experiment>& experiments() {
  static const std::vector<Experiment> table = {
      {"e1", "n", "Theorem 7: deterministic maximal matching rounds vs n",
       e1_points},
      {"e2", "n", "Theorem 14: deterministic MIS rounds vs n", e2_points},
      {"e3", "family", "Lemma 3 / Cor. 8 & 16: good-class degree mass",
       e3_points},
      {"e4", "n", "Sparsification invariants (Lemmas 10/11 & 17/18)",
       e4_points},
      {"e5", "family", "Lemmas 13 & 21: per-iteration edge removal fraction",
       e5_points},
      {"e6", "delta", "Theorem 1 (s5): rounds = O(log Delta + log log n)",
       e6_points},
      {"e7", "delta", "Corollary 2: CONGESTED CLIQUE MIS vs baseline",
       e7_points},
      {"e8", "n", "Space: peak machine load vs S = O(n^eps)", e8_points},
      {"e9", "n", "Derandomization cost: seed trials per step", e9_points},
      {"e10", "n", "Deterministic vs randomized baselines (iterations)",
       e10_points},
      {"e11", "n", "Ablation: 2-hop footprint with vs without sparsification",
       e11_points},
      {"e12", "selection_batch", "Ablation: selection batch size", e12_points},
      {"e13", "case", "Lemma-4 realizability: real vs charged primitives",
       e13_points},
      {"e14", "n", "Applications: Koenig-exact vertex cover on bipartite",
       e14_points},
      {"e15", "topology", "s6 extension: derandomized Luby in CONGEST",
       e15_points},
      {"e16", "n", "Observability: traced MIS run vs registry snapshot",
       e16_points},
      {"e17", "threads", "Host-parallel engine: identity across threads",
       e17_points},
      {"e18", "scenario", "Fault injection: recovery cost, identical output",
       e18_points},
  };
  return table;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  RunConfig cfg;
  cfg.quick = args.has("quick");
  cfg.progress = args.has("progress");
  cfg.threads = static_cast<std::uint32_t>(args.get_int("threads", 1));
  const std::string out_dir = args.get("out", ".");
  const std::string commit = args.get("commit", "");
  const std::string experiments_csv = args.get("experiments", "");
  if (experiments_csv.empty()) {
    std::fprintf(stderr,
                 "usage: bench_runner --experiments=e1,e2,...|all --out=<dir> "
                 "[--quick] [--threads=N] [--commit=<sha>] [--progress]\n");
    return 2;
  }

  std::vector<const Experiment*> selected;
  if (experiments_csv == "all") {
    for (const auto& e : experiments()) selected.push_back(&e);
  } else {
    for (const auto& id : split_csv(experiments_csv)) {
      const Experiment* found = nullptr;
      for (const auto& e : experiments()) {
        if (id == e.id) found = &e;
      }
      if (found == nullptr) {
        std::fprintf(stderr, "unknown experiment '%s' (e1..e18)\n",
                     id.c_str());
        return 2;
      }
      selected.push_back(found);
    }
  }

  for (const Experiment* exp : selected) {
    std::fprintf(stderr, "running %s: %s\n", exp->id, exp->title);
    auto doc = dmpc::bench::bench_envelope(exp->id, exp->title, cfg.quick,
                                           commit)
                   .set("axis", std::string(exp->axis))
                   .set("threads", static_cast<std::uint64_t>(cfg.threads))
                   .set("points", exp->points(cfg));
    const std::string path =
        out_dir + "/BENCH_" + upper(exp->id) + ".json";
    dmpc::bench::write_json_file(doc, path);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
  return 0;
}
