// Shared JSON emission for the bench layer.
//
// Three binaries emit machine-readable bench artifacts — bench_runner (one
// BENCH_<EXP>.json per experiment), bench_e17_host_parallel --json, and
// bench_e18_fault_recovery --json. They share one envelope so CI tooling
// (tools/scaling_check, artifact archiving) parses a single shape:
//
//   {
//     "schema_version": 1,
//     "bench": "<id>",            // "e1" .. "e18"
//     "title": "<one line>",
//     "quick": true|false,
//     "toolchain": {"compiler": .., "build": .., "commit": ..},
//     ... payload fields appended by the caller ...
//   }
//
// Field discipline mirrors the metrics registry (obs/metrics_registry.hpp):
// "model" sub-objects hold integer-exact, thread- and machine-independent
// values (fractions are scaled to parts-per-million integers via ppm());
// "wall" sub-objects hold non-golden host measurements. scaling_check only
// gates on model fields.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics_registry.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace dmpc::bench {

inline constexpr std::uint64_t kBenchSchemaVersion = 1;

/// Fraction -> parts-per-million integer, so ratio-valued model fields stay
/// integer-exact (and therefore byte-stable) in the artifact.
inline std::uint64_t ppm(double fraction) {
  return static_cast<std::uint64_t>(fraction * 1e6 + 0.5);
}

/// Compiler / build-type / commit stamp. Metadata, not gated: two artifacts
/// from different toolchains are still comparable on their model fields.
inline Json toolchain_stamp(const std::string& commit) {
#if defined(__clang__)
  const std::string compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  const std::string compiler = std::string("gcc ") + __VERSION__;
#else
  const std::string compiler = "unknown";
#endif
#ifdef NDEBUG
  const std::string build = "release";
#else
  const std::string build = "debug";
#endif
  return Json::object()
      .set("compiler", compiler)
      .set("build", build)
      .set("commit", commit.empty() ? std::string("unknown") : commit);
}

/// Non-golden host measurements for one point or scenario.
inline Json wall_stats(double wall_ms) {
  return Json::object()
      .set("wall_ms", wall_ms)
      .set("peak_rss_bytes", obs::peak_rss_bytes());
}

/// The common artifact envelope; callers append payload fields (points,
/// scenarios, sweep metadata) with .set().
inline Json bench_envelope(const std::string& bench, const std::string& title,
                           bool quick, const std::string& commit) {
  return Json::object()
      .set("schema_version", kBenchSchemaVersion)
      .set("bench", bench)
      .set("title", title)
      .set("quick", quick)
      .set("toolchain", toolchain_stamp(commit));
}

/// Pretty-print `doc` to `path` with a trailing newline.
inline void write_json_file(const Json& doc, const std::string& path) {
  std::ofstream out(path);
  DMPC_CHECK_MSG(out.good(), "cannot open " + path);
  out << doc.dump(2) << '\n';
}

}  // namespace dmpc::bench
