// E2 — Theorem 14: deterministic MIS runs in O(log n) MPC rounds with
// S = O(n^eps). Same sweep design as E1.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "mis/det_mis.hpp"

namespace {

void BM_DetMisRounds(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/2);
  dmpc::mis::DetMisConfig config;
  std::uint64_t rounds = 0, iterations = 0, peak = 0;
  for (auto _ : state) {
    const auto result = dmpc::mis::det_mis(g, config);
    rounds = result.metrics.rounds();
    iterations = result.iterations;
    peak = result.metrics.peak_machine_load();
    benchmark::DoNotOptimize(result.in_set.size());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["mpc_rounds"] = static_cast<double>(rounds);
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["rounds_per_log2n"] =
      static_cast<double>(rounds) / std::log2(static_cast<double>(n));
  state.counters["peak_load"] = static_cast<double>(peak);
}

}  // namespace

BENCHMARK(BM_DetMisRounds)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
