// E14 — application-layer quality: the guarantees the downstream reductions
// inherit from Theorem 1.
//
//  - vertex cover: |cover| / (maximum-matching lower bound) <= 2, measured
//    exactly on bipartite inputs via Hopcroft-Karp;
//  - matching quality: |maximal| / |maximum| in [0.5, 1];
//  - (Delta+1)-coloring: colors used vs the Delta+1 palette.
#include <benchmark/benchmark.h>

#include "apps/reductions.hpp"
#include "bench_common.hpp"
#include "graph/algorithms.hpp"

namespace {

void BM_VertexCoverQuality(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = dmpc::graph::random_bipartite(
      static_cast<dmpc::graph::NodeId>(n / 2),
      static_cast<dmpc::graph::NodeId>(n - n / 2),
      static_cast<dmpc::graph::EdgeId>(4 * n),
      dmpc::bench::workload_seed(14, n));
  double cover_ratio = 0, matching_ratio = 0;
  for (auto _ : state) {
    const auto maximum = dmpc::graph::hopcroft_karp(g);
    const auto cover = dmpc::apps::vertex_cover_2approx(g);
    // Koenig: on bipartite graphs min vertex cover == maximum matching.
    cover_ratio = static_cast<double>(cover.cover_size) /
                  static_cast<double>(maximum.size);
    matching_ratio = static_cast<double>(cover.matching_size) /
                     static_cast<double>(maximum.size);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["cover_over_opt"] = cover_ratio;        // <= 2 guaranteed
  state.counters["maximal_over_maximum"] = matching_ratio;  // in [0.5, 1]
}

void BM_ColoringQuality(benchmark::State& state) {
  const auto d = static_cast<std::uint32_t>(state.range(0));
  const auto g = dmpc::graph::random_regular(
      512, d, dmpc::bench::workload_seed(14, 100 + d));
  std::uint32_t used = 0;
  for (auto _ : state) {
    used = dmpc::apps::delta_plus_one_coloring(g).colors_used;
  }
  state.counters["delta"] = static_cast<double>(g.max_degree());
  state.counters["palette"] = static_cast<double>(g.max_degree() + 1);
  state.counters["colors_used"] = static_cast<double>(used);
}

}  // namespace

BENCHMARK(BM_VertexCoverQuality)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_ColoringQuality)
    ->Arg(3)
    ->Arg(5)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
