// E19: out-of-core shard storage — bounded build RSS + backend identity.
//
// The streaming shard builder (mpc/shard_format.hpp) promises peak host
// memory of O(n) words plus a fixed dirty-page budget, *never* O(m). This
// bench sweeps m on circulant graphs whose edge lists are stream-written
// (no in-memory graph is ever built for the sweep), records the process
// peak RSS after each build, and reports it next to the exact byte size the
// in-memory CSR would occupy — the quantity the builder's bound is measured
// against. tools/scaling_check gates the ratio (bench "e19"): build peak RSS
// must stay under a floor plus a fraction of csr_bytes, so regressing to an
// in-memory build fails CI at the largest m.
//
//   ./bench_e19_storage [--quick] [--json] [--rss-budget-mb=16]
//
// A separate small instance is solved through both backends and must be
// byte-identical (solutions + report JSON); it runs *after* the sweep so
// its heap CSR cannot pollute the RSS samples (ru_maxrss is monotone).
// With --json the artifact (bench/bench_json.hpp envelope, axis "m") is
// printed to stdout; CI redirects it to BENCH_E19.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "bench_json.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "mpc/shard_format.hpp"
#include "mpc/storage.hpp"
#include "obs/metrics_registry.hpp"
#include "support/options.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Stream-write the circulant graph C(n; 1..k): node v joined to v+d (mod n)
/// for d = 1..k. Exactly m = n*k distinct edges (for 2k < n), no self-loops,
/// uniform degree 2k — and O(1) writer memory, which is the point: the sweep
/// must never hold a graph-sized structure on the heap.
void write_circulant(const std::string& path, std::uint64_t n,
                     std::uint64_t k) {
  std::ofstream out(path);
  out << n << ' ' << n * k << '\n';
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t d = 1; d <= k; ++d) {
      out << v << ' ' << (v + d) % n << '\n';
    }
  }
}

/// Exact heap bytes Graph::from_edges would pin for (n, m): offsets
/// (n+1)*u64, adjacency 2m*u32, incident 2m*u64, edges m*8B.
std::uint64_t csr_bytes(std::uint64_t n, std::uint64_t m) {
  return (n + 1) * 8 + 2 * m * (4 + 8) + m * 8;
}

struct SweepPoint {
  std::uint64_t n = 0;
  std::uint64_t k = 0;
  dmpc::mpc::ShardBuildStats stats;
  std::uint64_t peak_rss_after_build = 0;
  double build_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const bool quick = args.has("quick");
  const bool json = args.has("json");
  const std::uint64_t rss_budget_mb =
      static_cast<std::uint64_t>(args.get_int("rss-budget-mb", 16));

  const fs::path dir = fs::temp_directory_path() / "dmpc_bench_e19";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Sweep sizes: degree 2k = 16 throughout, n doubling. The full sweep's
  // largest point has a ~420 MB in-memory CSR; the builder must stay flat.
  struct Size {
    std::uint64_t n, k;
  };
  std::vector<Size> sizes = {{100000, 8}, {200000, 8}, {400000, 8}};
  if (!quick) sizes.push_back({800000, 8});

  if (!json) {
    std::printf("== E19 out-of-core storage: %zu sweep points%s, "
                "rss_budget=%lluMB ==\n",
                sizes.size(), quick ? " (quick)" : "",
                static_cast<unsigned long long>(rss_budget_mb));
  }

  dmpc::mpc::ShardBuildOptions build;
  build.rss_budget_bytes = rss_budget_mb << 20;

  std::vector<SweepPoint> sweep;
  for (const auto& size : sizes) {
    SweepPoint point;
    point.n = size.n;
    point.k = size.k;
    const std::string edges = (dir / ("sweep_" + std::to_string(size.n) +
                                      ".txt")).string();
    const std::string shards = (dir / ("shards_" + std::to_string(size.n)))
                                   .string();
    write_circulant(edges, size.n, size.k);
    const auto t0 = Clock::now();
    point.stats = dmpc::mpc::shard_build(edges, shards, build);
    point.build_ms = ms_since(t0);
    point.peak_rss_after_build = dmpc::obs::peak_rss_bytes();
    fs::remove(edges);  // keep scratch-disk footprint to one point's input
    sweep.push_back(point);

    if (!json) {
      const auto csr = csr_bytes(point.stats.n, point.stats.m);
      std::printf("m=%-9llu shards=%-3llu build=%8.1fms  csr=%7.1fMB  "
                  "peak_rss=%7.1fMB  (%.0f%% of csr)\n",
                  static_cast<unsigned long long>(point.stats.m),
                  static_cast<unsigned long long>(point.stats.shards),
                  point.build_ms, csr / 1048576.0,
                  point.peak_rss_after_build / 1048576.0,
                  100.0 * point.peak_rss_after_build / csr);
    }
  }

  // Identity check — after every RSS sample: a heap CSR built here cannot
  // retroactively inflate the sweep's ru_maxrss readings.
  const std::uint64_t id_n = 2000, id_k = 8;
  const std::string id_edges = (dir / "identity.txt").string();
  const std::string id_shards = (dir / "identity_shards").string();
  write_circulant(id_edges, id_n, id_k);
  const auto id_stats = dmpc::mpc::shard_build(id_edges, id_shards, build);
  const auto storage = dmpc::mpc::MmapShardStorage::open(id_shards);
  const auto memory_graph = dmpc::graph::read_edge_list_file(id_edges);

  const dmpc::Solver solver;
  const auto t_solve = Clock::now();
  const auto from_mmap = solver.mis(*storage);
  const double solve_ms = ms_since(t_solve);
  const auto from_memory = solver.mis(memory_graph);
  const bool identical =
      from_mmap.in_set == from_memory.in_set &&
      to_json(from_mmap.report).dump() == to_json(from_memory.report).dump();
  std::size_t mis_size = 0;
  for (bool b : from_mmap.in_set) mis_size += b;

  if (!json) {
    std::printf("identity (n=%llu m=%llu): mis_size=%zu rounds=%llu "
                "identical=%s\n",
                static_cast<unsigned long long>(id_stats.n),
                static_cast<unsigned long long>(id_stats.m), mis_size,
                static_cast<unsigned long long>(
                    from_mmap.report.metrics.rounds()),
                identical ? "yes" : "NO");
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: mmap-backed solve differs from in-memory solve\n");
    fs::remove_all(dir);
    return 1;
  }

  if (json) {
    dmpc::Json points = dmpc::Json::array();
    points.push(
        dmpc::Json::object()
            .set("axis_value", id_stats.m)
            .set("model",
                 dmpc::Json::object()
                     .set("n", id_stats.n)
                     .set("m", id_stats.m)
                     .set("csr_bytes", csr_bytes(id_stats.n, id_stats.m))
                     .set("shard_bytes", id_stats.total_bytes)
                     .set("shards", id_stats.shards)
                     .set("mis_size", static_cast<std::uint64_t>(mis_size))
                     .set("mpc_rounds", from_mmap.report.metrics.rounds())
                     .set("identical", identical ? 1 : 0))
            .set("wall", dmpc::bench::wall_stats(solve_ms)));
    for (const auto& point : sweep) {
      points.push(
          dmpc::Json::object()
              .set("axis_value", point.stats.m)
              .set("model",
                   dmpc::Json::object()
                       .set("n", point.stats.n)
                       .set("m", point.stats.m)
                       .set("csr_bytes",
                            csr_bytes(point.stats.n, point.stats.m))
                       .set("shard_bytes", point.stats.total_bytes)
                       .set("shards", point.stats.shards))
              .set("rss",
                   dmpc::Json::object()
                       .set("build_peak_rss_bytes", point.peak_rss_after_build)
                       .set("rss_budget_bytes", build.rss_budget_bytes))
              .set("wall", dmpc::bench::wall_stats(point.build_ms)));
    }
    auto doc =
        dmpc::bench::bench_envelope(
            "e19", "Out-of-core shard storage: build RSS bound + identity",
            quick, args.get("commit", ""))
            .set("axis", "m")
            .set("points", points);
    std::printf("%s\n", doc.dump(2).c_str());
  }

  fs::remove_all(dir);
  return 0;
}
