// E5 — Lemma 13 / Lemma 21: every derandomized iteration removes at least a
// constant fraction of the remaining edges (paper floors: delta|E|/536 for
// matching, delta^2|E|/400 for MIS).
//
// Reported per family: min / mean per-iteration removed fraction across the
// whole run, against the paper's floor.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "support/stats.hpp"

namespace {

using dmpc::graph::Graph;

Graph family_graph(int family) {
  switch (family) {
    case 0: return dmpc::graph::gnm(2048, 16384, 51);
    case 1: return dmpc::graph::power_law(2048, 12288, 2.5, 52);
    case 2: return dmpc::graph::random_regular(2048, 16, 53);
    default: return dmpc::graph::lopsided(8, 128, 1024, 4096, 54);
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0: return "gnm";
    case 1: return "power_law";
    case 2: return "regular";
    default: return "lopsided";
  }
}

void BM_MatchingProgress(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const auto g = family_graph(family);
  dmpc::matching::DetMatchingConfig config;
  dmpc::RunningStats frac;
  for (auto _ : state) {
    const auto result = dmpc::matching::det_maximal_matching(g, config);
    for (const auto& r : result.reports) frac.add(r.progress_fraction);
  }
  const auto params =
      dmpc::matching::params_for(config, g.num_nodes());
  state.SetLabel(family_name(family));
  state.counters["paper_floor"] = params.delta() / 536.0;
  state.counters["min_removed_frac"] = frac.min();
  state.counters["mean_removed_frac"] = frac.mean();
  state.counters["iterations"] = static_cast<double>(frac.count());
}

void BM_MisProgress(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const auto g = family_graph(family);
  dmpc::mis::DetMisConfig config;
  dmpc::RunningStats frac;
  for (auto _ : state) {
    const auto result = dmpc::mis::det_mis(g, config);
    for (const auto& r : result.reports) frac.add(r.progress_fraction);
  }
  const auto params = dmpc::mis::params_for(config, g.num_nodes());
  state.SetLabel(family_name(family));
  state.counters["paper_floor"] =
      params.delta() * params.delta() / 400.0;
  state.counters["min_removed_frac"] = frac.min();
  state.counters["mean_removed_frac"] = frac.mean();
  state.counters["iterations"] = static_cast<double>(frac.count());
}

}  // namespace

BENCHMARK(BM_MatchingProgress)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Iterations(1);
BENCHMARK(BM_MisProgress)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Iterations(1);

BENCHMARK_MAIN();
