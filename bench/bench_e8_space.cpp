// E8 — space bounds: peak per-machine load stays within S = O(n^eps) and
// total space within O(m + n^{1+eps}) for eps in {0.3, 0.5, 0.7}.
//
// The simulator *enforces* the per-machine bound (a violation throws); this
// experiment reports the measured peak as a fraction of the budget and how
// it scales with n, i.e. the claim's "fully scalable" dimension.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "mis/det_mis.hpp"

namespace {

void BM_SpaceScaling(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 10.0;
  const auto g = dmpc::bench::sweep_gnm(n, /*experiment=*/8);
  dmpc::mis::DetMisConfig config;
  config.eps = eps;
  const auto cc =
      dmpc::mis::cluster_config_for(config, g.num_nodes(), g.num_edges());
  std::uint64_t peak = 0, comm = 0;
  for (auto _ : state) {
    const auto result = dmpc::mis::det_mis(g, config);
    peak = result.metrics.peak_machine_load();
    comm = result.metrics.total_communication();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["eps"] = eps;
  state.counters["S_budget"] = static_cast<double>(cc.machine_space);
  state.counters["peak_load"] = static_cast<double>(peak);
  state.counters["peak_over_budget"] =
      static_cast<double>(peak) / static_cast<double>(cc.machine_space);
  state.counters["machines"] = static_cast<double>(cc.num_machines);
  state.counters["total_comm"] = static_cast<double>(comm);
  // Peak load normalized by n^eps — flat iff the O(n^eps) claim holds.
  state.counters["peak_over_n_eps"] =
      static_cast<double>(peak) /
      std::pow(static_cast<double>(n), eps);
}

}  // namespace

BENCHMARK(BM_SpaceScaling)
    ->ArgsProduct({{512, 1024, 2048, 4096}, {3, 5, 7}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
