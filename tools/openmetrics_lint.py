#!/usr/bin/env python3
"""Strict structural linter for OpenMetrics v1.0 text expositions.

Usage: openmetrics_lint.py <exposition.txt>

Checks the subset of the spec the dmpc exporter promises (stdlib only, so
CI can run it without installing anything):

  * every line is a `# TYPE`, `# HELP`, sample, or the final `# EOF`;
  * `# EOF` is the last line and appears exactly once;
  * metric family names match [a-zA-Z_:][a-zA-Z0-9_:]* and are unique;
  * `# TYPE` precedes `# HELP` and the samples of its family;
  * every sample belongs to the most recently declared family, with the
    suffix its type admits (counter: `_total`; histogram: `_bucket`/
    `_count`/`_sum`; gauge: bare name);
  * every family declares at least one sample;
  * histograms expose an `le="+Inf"` bucket whose value equals `_count`;
  * label blocks are well-formed (`name="value"` pairs, escaped values);
  * sample values are integers or `+Inf`/`-Inf`/`NaN`.

Exit 0 when the file passes, 1 with one line per violation otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
# label value: any escaped (\\, \", \n) or plain non-quote/backslash bytes
LABELS_RE = re.compile(
    r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\[\\\"n]|[^\"\\])*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\[\\\"n]|[^\"\\])*\")*\}\Z"
)
VALUE_RE = re.compile(r"-?[0-9]+\Z|[+-]Inf\Z|NaN\Z")
TYPES = {"counter", "gauge", "histogram", "summary", "info", "stateset",
         "gaugehistogram", "unknown"}


def sample_family(name, kind):
    """Map a sample name back to its family given the family's type."""
    if kind == "counter" and name.endswith("_total"):
        return name[: -len("_total")]
    if kind == "histogram":
        for suffix in ("_bucket", "_count", "_sum"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def lint(lines):
    errors = []
    families = {}  # family -> type
    current = None  # (family, type)
    sampled = set()
    eof_index = None
    hist_inf = {}  # family -> +Inf bucket value
    hist_count = {}  # family -> _count value

    def err(lineno, message):
        errors.append(f"line {lineno}: {message}")

    for lineno, line in enumerate(lines, start=1):
        if line == "# EOF":
            if eof_index is not None:
                err(lineno, "duplicate # EOF")
            eof_index = lineno
            continue
        if eof_index is not None:
            err(lineno, "content after # EOF")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                err(lineno, "malformed # TYPE line")
                continue
            _, _, family, kind = parts
            if not NAME_RE.match(family):
                err(lineno, f"invalid family name {family!r}")
            if kind not in TYPES:
                err(lineno, f"unknown metric type {kind!r}")
            if family in families:
                err(lineno, f"family {family!r} declared twice")
            families[family] = kind
            current = (family, kind)
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                err(lineno, "malformed # HELP line")
                continue
            family = parts[2]
            if current is None or family != current[0]:
                err(lineno, f"# HELP for {family!r} outside its family block")
            continue
        if line.startswith("#"):
            err(lineno, f"unrecognized comment line {line!r}")
            continue
        # Sample line: name[{labels}] value
        m = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^ ]*\})? (.*)\Z", line)
        if not m:
            err(lineno, f"malformed sample line {line!r}")
            continue
        name, labels, value = m.groups()
        if labels and not LABELS_RE.match(labels):
            err(lineno, f"malformed label block {labels!r}")
        if not VALUE_RE.match(value):
            err(lineno, f"malformed sample value {value!r}")
        if current is None:
            err(lineno, f"sample {name!r} before any # TYPE declaration")
            continue
        family, kind = current
        if sample_family(name, kind) != family:
            err(lineno, f"sample {name!r} does not belong to family "
                        f"{family!r} ({kind})")
            continue
        if kind == "counter" and not name.endswith("_total"):
            err(lineno, f"counter sample {name!r} missing _total suffix")
        sampled.add(family)
        if kind == "histogram" and value.lstrip("-").isdigit():
            if name.endswith("_bucket") and labels and 'le="+Inf"' in labels:
                hist_inf[family] = int(value)
            if name.endswith("_count"):
                hist_count[family] = int(value)

    if eof_index is None:
        errors.append("missing # EOF terminator")
    elif eof_index != len(lines):
        errors.append("# EOF is not the final line")
    for family, kind in families.items():
        if family not in sampled:
            errors.append(f"family {family!r} ({kind}) declares no samples")
        if kind == "histogram":
            if family not in hist_inf:
                errors.append(f"histogram {family!r} missing le=\"+Inf\" bucket")
            elif hist_inf[family] != hist_count.get(family):
                errors.append(
                    f"histogram {family!r} +Inf bucket {hist_inf[family]} != "
                    f"_count {hist_count.get(family)}")
    return errors


def main(argv):
    if len(argv) != 2:
        print("usage: openmetrics_lint.py <exposition.txt>", file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as f:
        text = f.read()
    if not text.endswith("\n"):
        print("error: exposition does not end with a newline", file=sys.stderr)
        return 1
    errors = lint(text.splitlines())
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"openmetrics_lint: {argv[1]} ok "
          f"({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
