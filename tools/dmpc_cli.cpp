// dmpc — command-line front end.
//
//   dmpc gen      --family=gnm --n=1000 --m=8000 [--seed=1] --out=g.txt
//   dmpc stats    --in=g.txt [--threads=N]
//   dmpc mis      --in=g.txt [--eps=0.5] [--algorithm=auto|sparse|lowdeg]
//                 [--threads=N] [--out=mis.txt] [--trace=trace.json]
//                 [--trace-format=jsonl|chrome] [--fault-plan=plan.txt]
//                 [--max-retries=3] [--checkpoint=round|phase|off]
//                 [--certify=off|answer|full] [--metrics-out=metrics.json]
//                 [--profile] [--storage=memory|mmap] [--shard-dir=dir]
//                 [--storage-verify=off|open|paranoid]
//                 [--storage-fallback=none|memory] [--io-fault-plan=plan.txt]
//                 [--events=events.jsonl] [--events-filter=round,recovery,...]
//                 [--progress] [--metrics-format=json|openmetrics]
//                 [--host-sample-ms=100]
//   dmpc matching --in=g.txt [--eps=0.5] [--threads=N] [--out=matching.txt]
//                 [--trace=...] [--trace-format=...] [--fault-plan=...]
//                 [--certify=...] [--metrics-out=...] [--profile]
//                 [--storage=...] [--shard-dir=...] [--storage-verify=...]
//                 [--storage-fallback=...] [--io-fault-plan=...]
//                 [--events=...] [--events-filter=...] [--progress]
//                 [--metrics-format=...] [--host-sample-ms=...]
//   dmpc cover    --in=g.txt [--out=cover.txt]
//   dmpc color    --in=g.txt [--out=colors.txt]
//
// --threads=N uses N host threads for local computation (0 = hardware
// concurrency); outputs are byte-identical for every value. --fault-plan
// injects a deterministic fault schedule (docs/FAULTS.md) recovered via
// checkpoint/replay; solutions are byte-identical to the fault-free run.
// --certify runs checked mode (docs/ROBUSTNESS.md): the answer is verified
// before it is reported, a one-line certificate verdict is printed, and a
// failed certificate exits 3. --profile records the per-round load-skew
// timeline (docs/OBSERVABILITY.md): report JSON and --metrics-out gain a
// `profile` block (kProfiledReportSchemaVersion), and traces gain hostprof
// counters.
// --storage=mmap --shard-dir=<dir> solves out of a shard directory built by
// tools/shard_build instead of parsing --in (docs/STORAGE.md); answers and
// report JSON are byte-identical to the in-memory backend.
// --storage-verify re-computes the v2 manifest's shard CRC64s (open: once at
// open; paranoid: again when the solve attaches); a mismatch that survives
// the retry/quarantine ladder exits 2, or degrades to the in-memory backend
// under --storage-fallback=memory. --io-fault-plan injects a deterministic
// host-I/O fault schedule into the storage layer (docs/FAULTS.md); solutions
// are byte-identical to the fault-free run for any plan within budget.
// --events streams typed JSONL progress events (docs/OBSERVABILITY.md,
// "Live telemetry"); --events-filter narrows categories, --progress mirrors
// lifecycle events as a throttled stderr line, and the report is stamped
// with the events schema version. --metrics-format=openmetrics switches
// --metrics-out to the OpenMetrics v1.0 text exposition; --host-sample-ms
// runs a periodic host-gauge sampler whose ring rides along in the JSON
// metrics document as `host_samples` (host section — never golden).
// Invalid options (bad eps, unknown algorithm or trace format, a malformed
// input file or fault plan, ...) are reported with their typed status code
// and exit 2; internal check failures exit 1.
//
// Graphs are plain edge lists: "n m" header then "u v" per line.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "api/cli_options.hpp"
#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "apps/derand_coloring.hpp"
#include "apps/reductions.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/io.hpp"
#include "obs/events.hpp"
#include "obs/host_sampler.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/parse_error.hpp"

namespace {

using dmpc::graph::EdgeId;
using dmpc::graph::Graph;
using dmpc::graph::NodeId;

int usage() {
  std::fprintf(stderr,
               "usage: dmpc <gen|stats|mis|matching|cover|color> [--options]\n"
               "solver commands accept --trace=<file> to record a span trace\n"
               "and --trace-format=jsonl|chrome to pick the encoding\n"
               "(chrome output loads in chrome://tracing or ui.perfetto.dev)\n"
               "mis/matching also accept --events=<file> for a JSONL\n"
               "progress-event stream and --progress for a live stderr line\n"
               "see the header of tools/dmpc_cli.cpp for details\n");
  return 2;
}

Graph generate(const dmpc::ArgParser& args) {
  const std::string family = args.get("family", "gnm");
  const auto n = static_cast<NodeId>(args.get_int("n", 1000));
  const auto m = static_cast<EdgeId>(args.get_int("m", 8 * args.get_int("n", 1000)));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (family == "gnm") return dmpc::graph::gnm(n, m, seed);
  if (family == "gnp") {
    return dmpc::graph::gnp(n, args.get_double("p", 0.01), seed);
  }
  if (family == "power_law") {
    return dmpc::graph::power_law(n, m, args.get_double("beta", 2.5), seed);
  }
  if (family == "regular") {
    return dmpc::graph::random_regular(
        n, static_cast<std::uint32_t>(args.get_int("d", 8)), seed);
  }
  if (family == "bipartite") {
    return dmpc::graph::random_bipartite(n / 2, n - n / 2, m, seed);
  }
  if (family == "grid") {
    const auto side = static_cast<NodeId>(args.get_int("side", 32));
    return dmpc::graph::grid(side, side);
  }
  if (family == "tree") return dmpc::graph::random_tree(n, seed);
  if (family == "star") return dmpc::graph::star(n - 1);
  if (family == "lopsided") {
    return dmpc::graph::lopsided(
        static_cast<NodeId>(args.get_int("core", 4)),
        static_cast<std::uint32_t>(args.get_int("core_degree", 64)), n, m,
        seed);
  }
  DMPC_CHECK_MSG(false, "unknown family: " << family);
  return {};
}

dmpc::CliSolveOptions solve_options(const dmpc::ArgParser& args) {
  // Flag parsing is shared with the fuzz harness (api/cli_options.hpp);
  // only file IO — loading the fault plan — happens here.
  dmpc::CliSolveOptions cli = dmpc::parse_solve_options(args);
  if (!cli.fault_plan_path.empty()) {
    errno = 0;
    std::ifstream in(cli.fault_plan_path);
    if (!in.good()) {
      throw dmpc::ParseError(
          dmpc::ParseErrorCode::kIoError,
          "cannot open fault plan '" + cli.fault_plan_path +
              "': " + (errno != 0 ? std::strerror(errno) : "unknown error"));
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      cli.options.faults = dmpc::mpc::FaultPlan::parse(text.str());
    } catch (const dmpc::ParseError& e) {
      throw dmpc::OptionsError(
          dmpc::Status::error(dmpc::StatusCode::kInvalidFaultPlan,
                              cli.fault_plan_path + ": " + e.what()));
    }
  }
  if (!cli.io_fault_plan_path.empty()) {
    errno = 0;
    std::ifstream in(cli.io_fault_plan_path);
    if (!in.good()) {
      throw dmpc::ParseError(
          dmpc::ParseErrorCode::kIoError,
          "cannot open io fault plan '" + cli.io_fault_plan_path +
              "': " + (errno != 0 ? std::strerror(errno) : "unknown error"));
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      cli.options.io_faults = dmpc::mpc::IoFaultPlan::parse(text.str());
    } catch (const dmpc::ParseError& e) {
      throw dmpc::OptionsError(
          dmpc::Status::error(dmpc::StatusCode::kInvalidIoFaultPlan,
                              cli.io_fault_plan_path + ": " + e.what()));
    }
  }
  return cli;
}

// --metrics-out: full registry snapshot delta for the solve, all three
// sections grouped (docs/OBSERVABILITY.md). The model subtree is golden;
// host/recovery are diagnostic. Under --profile the skew timeline rides
// along as a `profile` block; with --events an `events_summary` block rides
// along too, and the document is stamped with the highest enabled schema
// tier. --metrics-format=openmetrics writes the OpenMetrics v1.0 text
// exposition instead (host_samples stays JSON-only: OpenMetrics exposes the
// registry's *current* state, not a timeline).
void write_metrics(const dmpc::CliSolveOptions& cli, const dmpc::Solver& solver,
                   const dmpc::SolveReport& report,
                   const dmpc::obs::HostSampler* sampler) {
  const std::string& path = cli.metrics_out_path;
  if (path.empty()) return;
  errno = 0;
  auto f = std::ofstream(path);
  if (!f.good()) {
    throw dmpc::OptionsError(dmpc::Status::error(
        dmpc::StatusCode::kIoError,
        "cannot open '" + path + "' for writing: " +
            (errno != 0 ? std::strerror(errno) : "unknown error")));
  }
  if (cli.metrics_format == dmpc::MetricsFormat::kOpenMetrics) {
    f << solver.metrics_openmetrics();
    return;
  }
  const bool profiled = report.profile.enabled;
  const std::uint32_t schema =
      report.events.enabled
          ? dmpc::kEventsReportSchemaVersion
          : (profiled ? dmpc::kProfiledReportSchemaVersion
                      : dmpc::kReportSchemaVersion);
  auto out = dmpc::Json::object()
                 .set("schema_version", schema)
                 .set("registry", dmpc::obs::to_json(solver.metrics_snapshot()));
  if (profiled) out.set("profile", to_json(report.profile));
  if (report.events.enabled) {
    out.set("events_summary", dmpc::to_json(report.events));
  }
  if (sampler != nullptr) out.set("host_samples", sampler->to_json());
  f << out.dump(2) << '\n';
}

void print_certificate(const dmpc::SolveReport& report) {
  if (report.certificate.mode == dmpc::verify::CertifyMode::kOff) return;
  std::printf("certificate[%s]: %s\n",
              dmpc::verify::certify_mode_name(report.certificate.mode),
              report.certificate.summary().c_str());
}

void print_report(const dmpc::SolveReport& report) {
  std::printf("algorithm=%s iterations=%llu rounds=%llu peak_load=%llu "
              "communication=%llu\n",
              report.algorithm_used.c_str(),
              (unsigned long long)report.iterations,
              (unsigned long long)report.metrics.rounds(),
              (unsigned long long)report.metrics.peak_machine_load(),
              (unsigned long long)report.metrics.total_communication());
  if (!report.recovery.clean()) {
    std::printf("recovery: faults=%llu retries=%llu replayed_rounds=%llu "
                "checkpoints=%llu\n",
                (unsigned long long)report.recovery.faults_injected,
                (unsigned long long)report.recovery.retries,
                (unsigned long long)report.recovery.replayed_rounds,
                (unsigned long long)report.recovery.checkpoints);
  }
  if (!report.recovery.storage.clean()) {
    const auto& s = report.recovery.storage;
    std::printf("storage recovery: io_faults=%llu retries=%llu "
                "checksum_failures=%llu quarantined=%llu degraded=%llu\n",
                (unsigned long long)s.io_faults_injected,
                (unsigned long long)s.retries,
                (unsigned long long)s.checksum_failures,
                (unsigned long long)s.quarantined_shards,
                (unsigned long long)s.degraded);
  }
}

/// Opens an output file, or raises a typed option error (exit 2) carrying
/// the OS detail — an unwritable --out/--trace/--metrics-out path is a user
/// mistake, not an internal invariant violation.
std::ofstream open_out(const std::string& path) {
  errno = 0;
  std::ofstream out(path);
  if (!out.good()) {
    throw dmpc::OptionsError(dmpc::Status::error(
        dmpc::StatusCode::kIoError,
        "cannot open '" + path + "' for writing: " +
            (errno != 0 ? std::strerror(errno) : "unknown error")));
  }
  return out;
}

/// Owns the trace output chain (--trace / --trace-format). Members are
/// heap-allocated so the sink's stream pointer stays stable across moves.
struct TraceSetup {
  std::unique_ptr<std::ofstream> out;
  std::unique_ptr<dmpc::obs::TraceSink> sink;
  std::unique_ptr<dmpc::obs::TraceSession> session;

  dmpc::obs::TraceSession* session_or_null() const { return session.get(); }
  void finish() {
    if (session) session->finish();
    if (out) out->close();
  }
};

TraceSetup make_trace(const dmpc::ArgParser& args) {
  TraceSetup t;
  const std::string path = args.get("trace", "");
  if (path.empty()) return t;
  const std::string format = args.get("trace-format", "jsonl");
  errno = 0;
  t.out = std::make_unique<std::ofstream>(path);
  if (!t.out->good()) {
    throw dmpc::OptionsError(dmpc::Status::error(
        dmpc::StatusCode::kIoError,
        "cannot open '" + path + "' for writing: " +
            (errno != 0 ? std::strerror(errno) : "unknown error")));
  }
  if (format == "chrome") {
    t.sink = std::make_unique<dmpc::obs::ChromeTraceSink>(t.out.get());
  } else if (format == "jsonl") {
    t.sink = std::make_unique<dmpc::obs::JsonlTraceSink>(t.out.get());
  } else {
    throw dmpc::OptionsError(dmpc::Status::error(
        dmpc::StatusCode::kInvalidTraceFormat,
        "unknown trace format '" + format + "' (expected jsonl|chrome)"));
  }
  t.session = std::make_unique<dmpc::obs::TraceSession>(t.sink.get());
  // --profile additionally records hostprof/* counter samples (wall/CPU/alloc
  // per host scope); without it the trace stream is unchanged.
  if (args.has("profile")) t.session->enable_host_counters(true);
  return t;
}

/// Owns the progress-event chain (--events / --events-filter / --progress).
/// Members are heap-allocated so the sink's stream pointer stays stable.
/// The Solver finishes the bus itself (including on unwind paths); finish()
/// here is a belt-and-braces idempotent flush plus the file close.
struct EventSetup {
  std::unique_ptr<std::ofstream> out;
  std::unique_ptr<dmpc::obs::JsonlEventSink> sink;
  std::unique_ptr<dmpc::obs::ProgressLineSink> progress;
  std::unique_ptr<dmpc::obs::EventBus> bus;

  dmpc::obs::EventBus* bus_or_null() const { return bus.get(); }
  void finish() {
    if (bus) bus->finish();
    if (out) out->close();
  }
};

EventSetup make_events(const dmpc::CliSolveOptions& cli) {
  EventSetup e;
  if (cli.events_path.empty() && !cli.progress) return e;
  e.bus = std::make_unique<dmpc::obs::EventBus>();
  e.bus->set_filter(cli.events_filter);
  if (!cli.events_path.empty()) {
    errno = 0;
    e.out = std::make_unique<std::ofstream>(cli.events_path);
    if (!e.out->good()) {
      throw dmpc::OptionsError(dmpc::Status::error(
          dmpc::StatusCode::kIoError,
          "cannot open '" + cli.events_path + "' for writing: " +
              (errno != 0 ? std::strerror(errno) : "unknown error")));
    }
    e.sink = std::make_unique<dmpc::obs::JsonlEventSink>(e.out.get());
    e.bus->subscribe(e.sink.get());
  }
  if (cli.progress) {
    e.progress = std::make_unique<dmpc::obs::ProgressLineSink>(&std::cerr);
    e.bus->subscribe(e.progress.get());
  }
  return e;
}

/// --host-sample-ms: periodic host-gauge sampler around the solve. In builds
/// where the background thread is compiled out (sanitizers, fuzzing) the
/// sampler still takes one synchronous sample so the ring is never empty.
std::unique_ptr<dmpc::obs::HostSampler> make_sampler(
    const dmpc::CliSolveOptions& cli) {
  if (cli.host_sample_ms == 0) return nullptr;
  dmpc::obs::HostSampler::Options options;
  options.interval_ms = cli.host_sample_ms;
  auto sampler = std::make_unique<dmpc::obs::HostSampler>(options);
  if (!sampler->start()) sampler->sample_once();
  return sampler;
}

int cmd_gen(const dmpc::ArgParser& args) {
  const auto g = generate(args);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    dmpc::graph::write_edge_list(g, std::cout);
  } else {
    dmpc::graph::write_edge_list_file(g, out);
  }
  std::fprintf(stderr, "generated n=%u m=%llu max_degree=%u\n", g.num_nodes(),
               (unsigned long long)g.num_edges(), g.max_degree());
  return 0;
}

int cmd_stats(const dmpc::ArgParser& args) {
  const auto g = dmpc::graph::read_edge_list_file(args.get("in", "graph.txt"));
  const auto ex = dmpc::exec::Executor::with_threads(
      static_cast<std::uint32_t>(args.get_int("threads", 1)));
  const auto stats = dmpc::graph::compute_stats(g, ex);
  std::printf("nodes=%u edges=%llu components=%u isolated=%u\n", stats.nodes,
              (unsigned long long)stats.edges, stats.components,
              stats.isolated_nodes);
  std::printf("degree: min=%u max=%u mean=%.2f density=%.5f\n",
              stats.min_degree, stats.max_degree, stats.mean_degree,
              stats.density);
  std::printf("triangles=%llu clustering=%.4f\n",
              (unsigned long long)stats.triangles, stats.clustering);
  std::printf("degree histogram (log2 buckets):");
  for (const auto count : dmpc::graph::degree_histogram_log2(g)) {
    std::printf(" %llu", (unsigned long long)count);
  }
  std::printf("\n");
  return 0;
}

int cmd_mis(const dmpc::ArgParser& args) {
  auto trace = make_trace(args);
  auto cli = solve_options(args);
  auto events = make_events(cli);
  cli.options.trace = trace.session_or_null();
  cli.options.events = events.bus_or_null();
  const dmpc::Solver solver(cli.options);
  if (auto status = solver.validate(); !status.ok()) {
    throw dmpc::OptionsError(std::move(status));
  }
  const auto storage = solver.open_storage(args.get("in", "graph.txt"));
  const auto& g = storage->graph();
  auto sampler = make_sampler(cli);
  const auto solution = solver.mis(*storage);
  if (sampler) sampler->stop();
  trace.finish();
  events.finish();
  write_metrics(cli, solver, solution.report, sampler.get());
  std::size_t size = 0;
  for (bool b : solution.in_set) size += b;
  if (args.has("json")) {
    auto j = dmpc::to_json(solution.report);
    j.set("mis_size", static_cast<std::uint64_t>(size));
    std::printf("%s\n", j.dump(2).c_str());
  } else {
    std::printf("mis_size=%zu\n", size);
    print_report(solution.report);
    print_certificate(solution.report);
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    auto f = open_out(out);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (solution.in_set[v]) f << v << '\n';
    }
  }
  return 0;
}

int cmd_matching(const dmpc::ArgParser& args) {
  auto trace = make_trace(args);
  auto cli = solve_options(args);
  auto events = make_events(cli);
  cli.options.trace = trace.session_or_null();
  cli.options.events = events.bus_or_null();
  const dmpc::Solver solver(cli.options);
  if (auto status = solver.validate(); !status.ok()) {
    throw dmpc::OptionsError(std::move(status));
  }
  const auto storage = solver.open_storage(args.get("in", "graph.txt"));
  const auto& g = storage->graph();
  auto sampler = make_sampler(cli);
  const auto solution = solver.maximal_matching(*storage);
  if (sampler) sampler->stop();
  trace.finish();
  events.finish();
  write_metrics(cli, solver, solution.report, sampler.get());
  if (args.has("json")) {
    auto j = dmpc::to_json(solution.report);
    j.set("matching_size",
          static_cast<std::uint64_t>(solution.matching.size()));
    std::printf("%s\n", j.dump(2).c_str());
  } else {
    std::printf("matching_size=%zu\n", solution.matching.size());
    print_report(solution.report);
    print_certificate(solution.report);
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    auto f = open_out(out);
    for (const auto e : solution.matching) {
      f << g.edge(e).u << ' ' << g.edge(e).v << '\n';
    }
  }
  return 0;
}

int cmd_cover(const dmpc::ArgParser& args) {
  const auto g = dmpc::graph::read_edge_list_file(args.get("in", "graph.txt"));
  auto trace = make_trace(args);
  auto cli = solve_options(args);
  cli.options.trace = trace.session_or_null();
  const auto result = dmpc::apps::vertex_cover_2approx(g, cli.options);
  trace.finish();
  std::printf("cover_size=%llu matching_lower_bound=%llu (<= 2x OPT)\n",
              (unsigned long long)result.cover_size,
              (unsigned long long)result.matching_size);
  print_report(result.report);
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    auto f = open_out(out);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (result.in_cover[v]) f << v << '\n';
    }
  }
  return 0;
}

int cmd_color(const dmpc::ArgParser& args) {
  const auto g = dmpc::graph::read_edge_list_file(args.get("in", "graph.txt"));
  std::vector<std::uint32_t> colors;
  std::uint32_t used = 0;
  if (args.has("native")) {
    // Native derandomized trial coloring (apps/derand_coloring.hpp).
    auto result = dmpc::apps::derand_coloring(g);
    std::printf("colors_used=%u (palette Delta+1 = %u) rounds=%llu "
                "mpc_rounds=%llu\n",
                result.colors_used, g.max_degree() + 1,
                (unsigned long long)result.rounds,
                (unsigned long long)result.metrics.rounds());
    colors = std::move(result.color);
    used = result.colors_used;
  } else {
    auto trace = make_trace(args);
    auto cli = solve_options(args);
    cli.options.trace = trace.session_or_null();
    auto result = dmpc::apps::delta_plus_one_coloring(g, cli.options);
    trace.finish();
    std::printf("colors_used=%u (palette Delta+1 = %u)\n",
                result.colors_used, g.max_degree() + 1);
    print_report(result.report);
    colors = std::move(result.color);
    used = result.colors_used;
  }
  (void)used;
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    auto f = open_out(out);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      f << v << ' ' << colors[v] << '\n';
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const dmpc::ArgParser args(argc - 1, argv + 1);
  try {
    if (command == "gen") return cmd_gen(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "mis") return cmd_mis(args);
    if (command == "matching") return cmd_matching(args);
    if (command == "cover") return cmd_cover(args);
    if (command == "color") return cmd_color(args);
  } catch (const dmpc::OptionsError& e) {
    // Caller input error: report the typed status, not an assertion.
    std::fprintf(stderr, "error: %s\n", e.status().to_string().c_str());
    return 2;
  } catch (const dmpc::verify::CertificationError& e) {
    // The answer failed checked-mode verification. Distinct exit code so
    // scripts can tell "bad input" (2) from "bad answer" (3).
    std::fprintf(stderr, "error: certification failed: %s\n", e.what());
    return 3;
  } catch (const dmpc::ParseError& e) {
    // Untrusted-input parse error (edge list, fault plan, flag value):
    // same exit class as other caller input errors.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const dmpc::mpc::FaultError& e) {
    // The fault plan exceeded the recovery policy at runtime: typed
    // unrecoverable-fault outcome, same exit class as option errors.
    std::fprintf(stderr, "error: unrecoverable_fault: %s\n", e.what());
    return 2;
  } catch (const dmpc::mpc::StorageError& e) {
    // The storage backend is unusable after the full recovery ladder
    // (retries, quarantine, fallback): a host-environment failure, same
    // exit class as input errors — never a silent wrong answer.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const dmpc::CheckFailure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
