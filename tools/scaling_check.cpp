// scaling_check — CI regression gate over BENCH_*.json artifacts.
//
//   ./scaling_check [--baseline-dir=bench/baselines] [--slack=0.25]
//                   [--tolerance=0.10] [--gini-cap=PPM]
//                   [--rss-factor=0.5] [--rss-floor-mb=96]
//                   [--wall-tolerance=0.50] [--wall-floor-ms=50]
//                   BENCH_E1.json [BENCH_E2.json ...]
//
// Two independent gates, both judged on the artifacts' integer "model"
// fields only (the "wall"/"toolchain" blocks are host-dependent by design):
//
//  1. Theorem envelopes (obs/scaling.hpp): the measured series must fit the
//     paper's scaling shape within a relative residual `--slack`:
//       e1/e2: mpc_rounds and iterations vs log2(n)     (Theorems 7 / 14)
//       e6:    lowdeg_rounds vs log2(Delta)             (Theorem 1)
//       e8:    peak_load <= s_budget, per point         (S = O(n^eps) cap)
//       e19:   shard-build peak RSS <= --rss-floor-mb MB
//              + --rss-factor * model.csr_bytes, per sweep point (the
//              streaming builder's O(n)+budget bound vs an O(m) regression)
//       e20:   model.identical == 1 on every storage-fault scenario (I/O
//              recovery must never change a solution or comparable report)
//     Experiments without a registered envelope are baseline-gated only.
//
//  1b. Skew band: points that embed a "profile" block (E1/E2 run with the
//     round profiler on) must keep their worst per-round load Gini at or
//     below --gini-cap parts-per-million. The profile block is
//     model-deterministic, so this is a golden gate like the envelopes.
//
//  2. Baseline comparison: when --baseline-dir holds a BENCH_<EXP>.json with
//     the same name, every model field of every baseline point must match
//     the measured value within relative `--tolerance` (absolute floor of 1
//     for near-zero counters). Points are matched positionally and must
//     agree on axis_value — a re-ordered or truncated sweep is a failure,
//     not a skip.
//
//  3. Wall-clock band (off by default; enable with --wall-tolerance=F > 0):
//     each measured point's wall.wall_ms must stay at or below
//     max(--wall-floor-ms, baseline wall_ms * (1 + F)). Upper bound only —
//     getting faster always passes — and host-section (kHost) by nature, so
//     it is meaningful only on a runner comparable to the one that wrote the
//     baselines; hence opt-in, with a generous default band and an absolute
//     floor absorbing timer noise on sub-floor benches.
//
// Exit 0 when every gate passes; exit 1 with one line per offending series
// ("<exp>.<axis>=<value>.<field>: ..."); exit 2 on usage/parse errors.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/scaling.hpp"
#include "support/json.hpp"
#include "support/options.hpp"
#include "support/parse_error.hpp"

namespace {

using dmpc::Json;
using dmpc::obs::EnvelopeKind;
using dmpc::obs::SeriesPoint;

int g_failures = 0;

void fail(const std::string& series, const std::string& message) {
  std::fprintf(stderr, "FAIL %s: %s\n", series.c_str(), message.c_str());
  ++g_failures;
}

std::string axis_value_str(const Json& point) {
  const Json& v = point.at("axis_value");
  if (v.is_string()) return v.as_string();
  if (v.is_int()) return std::to_string(v.as_int64());
  return std::to_string(v.as_double());
}

/// "<exp>.<axis>=<value>" — the series prefix used in failure lines.
std::string series_name(const Json& doc, const Json& point) {
  return doc.at("bench").as_string() + "." + doc.at("axis").as_string() + "=" +
         axis_value_str(point);
}

/// Extract (axis_value, model.field) over all points; skips points whose
/// axis_value is not numeric (string axes have no scaling shape to fit).
std::vector<SeriesPoint> extract_series(const Json& doc,
                                        const std::string& field) {
  std::vector<SeriesPoint> series;
  for (const Json& point : doc.at("points").items()) {
    const Json& axis = point.at("axis_value");
    if (!axis.is_number()) continue;
    const Json* y = point.at("model").find(field);
    if (y == nullptr || !y->is_number()) continue;
    series.push_back({axis.as_double(), y->as_double()});
  }
  return series;
}

void check_log_envelope(const Json& doc, const std::string& field,
                        EnvelopeKind kind, double slack) {
  const auto series = extract_series(doc, field);
  const std::string exp = doc.at("bench").as_string();
  if (series.empty()) {
    fail(exp + "." + field, "no numeric points to fit");
    return;
  }
  const auto fit = dmpc::obs::check_envelope(series, kind, slack);
  const char* shape = kind == EnvelopeKind::kLogX ? "log2(x)" : "log2(log2(x))";
  if (!fit.pass) {
    const auto& worst = series[fit.worst_index];
    fail(exp + "." + doc.at("axis").as_string() + "=" +
             std::to_string(static_cast<long long>(worst.x)) + "." + field,
         fit.detail);
    return;
  }
  std::printf("ok   %s.%s ~ %.2f + %.2f * %s (r^2=%.3f, max residual %.3f "
              "<= slack %.2f)\n",
              exp.c_str(), field.c_str(), fit.intercept, fit.slope, shape,
              fit.r_squared, fit.max_rel_residual, slack);
}

void check_space_cap(const Json& doc) {
  std::vector<SeriesPoint> series;
  std::vector<double> caps;
  std::vector<std::string> names;
  for (const Json& point : doc.at("points").items()) {
    const Json& model = point.at("model");
    series.push_back({point.at("axis_value").as_double(),
                      model.at("peak_load").as_double()});
    caps.push_back(model.at("s_budget").as_double());
    names.push_back(series_name(doc, point) + ".peak_load");
  }
  const auto fit = dmpc::obs::check_cap(series, caps);
  if (!fit.pass) {
    fail(names[fit.worst_index], fit.detail);
    return;
  }
  std::printf("ok   %s.peak_load <= s_budget on all %zu points\n",
              doc.at("bench").as_string().c_str(), series.size());
}

/// Gate 1b: worst per-round load Gini of every profiled point within the
/// skew band. A regression here means some primitive started concentrating
/// its communication on few machines even though totals still fit.
void check_skew_band(const Json& doc, std::uint64_t gini_cap_ppm) {
  std::size_t profiled = 0;
  std::uint64_t worst = 0;
  const int failures_before = g_failures;
  for (const Json& point : doc.at("points").items()) {
    const Json* profile = point.find("profile");
    if (profile == nullptr) continue;
    ++profiled;
    const Json* gini = profile->find("gini_max_ppm");
    if (gini == nullptr || !gini->is_number()) {
      fail(series_name(doc, point) + ".profile", "gini_max_ppm missing");
      continue;
    }
    const auto value = static_cast<std::uint64_t>(gini->as_int64());
    worst = std::max(worst, value);
    if (value > gini_cap_ppm) {
      fail(series_name(doc, point) + ".profile.gini_max_ppm",
           std::to_string(value) + " > skew band " +
               std::to_string(gini_cap_ppm) + " ppm");
    }
  }
  if (profiled > 0 && g_failures == failures_before) {
    std::printf("ok   %s: load gini <= %llu ppm on all %zu profiled points "
                "(worst %llu)\n",
                doc.at("bench").as_string().c_str(),
                static_cast<unsigned long long>(gini_cap_ppm), profiled,
                static_cast<unsigned long long>(worst));
  }
}

/// E19 gate: the streaming shard build's peak RSS must stay below an
/// absolute floor plus a fraction of the in-memory CSR footprint at every
/// point. The builder is O(n) + dirty-page budget, so as m grows the ratio
/// falls; a regression to materializing the graph (O(m) resident) blows the
/// cap at the largest point. Points without an "rss" block (the identity
/// point) are exempt. The RSS reading is a host measurement, but the bound
/// is coarse enough (floor + factor * csr) to be runner-independent.
void check_rss_bound(const Json& doc, double rss_factor,
                     double rss_floor_mb) {
  const int failures_before = g_failures;
  std::size_t checked = 0;
  for (const Json& point : doc.at("points").items()) {
    const Json* rss = point.find("rss");
    if (rss == nullptr) continue;
    const Json* peak = rss->find("build_peak_rss_bytes");
    const Json* csr = point.at("model").find("csr_bytes");
    if (peak == nullptr || !peak->is_number() || csr == nullptr ||
        !csr->is_number()) {
      fail(series_name(doc, point) + ".rss",
           "build_peak_rss_bytes / model.csr_bytes missing");
      continue;
    }
    const double cap = rss_floor_mb * 1048576.0 + rss_factor * csr->as_double();
    if (peak->as_double() > cap) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "build peak RSS %.1f MB > cap %.1f MB (floor %.0f MB + "
                    "%.2f * csr %.1f MB)",
                    peak->as_double() / 1048576.0, cap / 1048576.0,
                    rss_floor_mb, rss_factor, csr->as_double() / 1048576.0);
      fail(series_name(doc, point) + ".build_peak_rss_bytes", buf);
    }
    ++checked;
  }
  if (checked == 0) {
    fail(doc.at("bench").as_string() + ".rss", "no points carry an rss block");
  } else if (g_failures == failures_before) {
    std::printf("ok   %s: build peak RSS under floor+%.2f*csr cap on all %zu "
                "sweep points\n",
                doc.at("bench").as_string().c_str(), rss_factor, checked);
  }
}

/// E20 gate: every storage-fault scenario must report model.identical == 1
/// — recovery is only allowed to add ledger entries, never to change an
/// answer or a comparable report byte. The ledger counters themselves are
/// deterministic and covered by the baseline comparison (gate 2); this
/// envelope is the absolute floor that holds even without a baseline.
void check_recovery_identity(const Json& doc) {
  const int failures_before = g_failures;
  std::size_t checked = 0;
  for (const Json& point : doc.at("points").items()) {
    const Json* identical = point.at("model").find("identical");
    if (identical == nullptr || !identical->is_number()) {
      fail(series_name(doc, point) + ".identical", "field missing");
      continue;
    }
    if (identical->as_int64() != 1) {
      fail(series_name(doc, point) + ".identical",
           "recovered solve differs from the fault-free run");
    }
    ++checked;
  }
  if (checked == 0) {
    fail(doc.at("bench").as_string() + ".identical", "no points to check");
  } else if (g_failures == failures_before) {
    std::printf("ok   %s: recovery identity holds on all %zu scenarios\n",
                doc.at("bench").as_string().c_str(), checked);
  }
}

void check_envelopes(const Json& doc, double slack, double rss_factor,
                     double rss_floor_mb) {
  const std::string exp = doc.at("bench").as_string();
  if (exp == "e1" || exp == "e2") {
    check_log_envelope(doc, "mpc_rounds", EnvelopeKind::kLogX, slack);
    check_log_envelope(doc, "iterations", EnvelopeKind::kLogX, slack);
  } else if (exp == "e6") {
    check_log_envelope(doc, "lowdeg_rounds", EnvelopeKind::kLogX, slack);
  } else if (exp == "e8") {
    check_space_cap(doc);
  } else if (exp == "e19") {
    check_rss_bound(doc, rss_factor, rss_floor_mb);
  } else if (exp == "e20") {
    check_recovery_identity(doc);
  }
}

/// Gate 2: every model field of every baseline point within `tolerance`
/// (relative, absolute floor 1) of the measured artifact.
void compare_to_baseline(const Json& measured, const Json& baseline,
                         double tolerance) {
  const int failures_before = g_failures;
  const std::string exp = measured.at("bench").as_string();
  const auto& measured_points = measured.at("points").items();
  const auto& baseline_points = baseline.at("points").items();
  if (measured_points.size() != baseline_points.size()) {
    fail(exp + ".points",
         "point count " + std::to_string(measured_points.size()) +
             " != baseline " + std::to_string(baseline_points.size()));
    return;
  }
  std::size_t checked = 0;
  for (std::size_t i = 0; i < baseline_points.size(); ++i) {
    const Json& bp = baseline_points[i];
    const Json& mp = measured_points[i];
    const std::string series = series_name(measured, mp);
    if (axis_value_str(bp) != axis_value_str(mp)) {
      fail(series, "axis_value mismatch vs baseline " + axis_value_str(bp));
      continue;
    }
    for (const auto& [field, base_value] : bp.at("model").fields()) {
      if (!base_value.is_number()) continue;
      const Json* m = mp.at("model").find(field);
      if (m == nullptr || !m->is_number()) {
        fail(series + "." + field, "field missing from measured artifact");
        continue;
      }
      const double base = base_value.as_double();
      const double got = m->as_double();
      const double limit = tolerance * std::max(1.0, std::fabs(base));
      if (std::fabs(got - base) > limit) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "measured %.0f vs baseline %.0f (|delta| %.0f > "
                      "allowed %.1f)",
                      got, base, std::fabs(got - base), limit);
        fail(series + "." + field, buf);
      }
      ++checked;
    }
  }
  if (g_failures == failures_before) {
    std::printf("ok   %s: %zu model fields within %.0f%% of baseline\n",
                exp.c_str(), checked, tolerance * 100);
  }
}

/// Gate 3: measured wall_ms at or below the tolerance band over baseline.
/// Points without a wall block (on either side) are skipped, not failed:
/// older artifacts predate the block.
void compare_wall_to_baseline(const Json& measured, const Json& baseline,
                              double wall_tolerance, double wall_floor_ms) {
  const int failures_before = g_failures;
  const std::string exp = measured.at("bench").as_string();
  const auto& measured_points = measured.at("points").items();
  const auto& baseline_points = baseline.at("points").items();
  if (measured_points.size() != baseline_points.size()) return;  // gate 2 fails
  std::size_t checked = 0;
  for (std::size_t i = 0; i < baseline_points.size(); ++i) {
    const Json* bw = baseline_points[i].find("wall");
    const Json* mw = measured_points[i].find("wall");
    if (bw == nullptr || mw == nullptr) continue;
    const Json* base_ms = bw->find("wall_ms");
    const Json* got_ms = mw->find("wall_ms");
    if (base_ms == nullptr || !base_ms->is_number() || got_ms == nullptr ||
        !got_ms->is_number()) {
      continue;
    }
    const double base = base_ms->as_double();
    const double got = got_ms->as_double();
    const double limit =
        std::max(wall_floor_ms, base * (1.0 + wall_tolerance));
    if (got > limit) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "measured %.1f ms vs baseline %.1f ms (> allowed %.1f)",
                    got, base, limit);
      fail(series_name(measured, measured_points[i]) + ".wall_ms", buf);
    }
    ++checked;
  }
  if (g_failures == failures_before && checked > 0) {
    std::printf("ok   %s: wall_ms within +%.0f%% of baseline on %zu points\n",
                exp.c_str(), wall_tolerance * 100, checked);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const double slack = args.get_double("slack", 0.25);
  const double tolerance = args.get_double("tolerance", 0.10);
  const double wall_tolerance = args.get_double("wall-tolerance", 0.0);
  const double wall_floor_ms = args.get_double("wall-floor-ms", 50.0);
  const auto gini_cap_ppm =
      static_cast<std::uint64_t>(args.get_int("gini-cap", 900000));
  const double rss_factor = args.get_double("rss-factor", 0.5);
  const double rss_floor_mb = args.get_double("rss-floor-mb", 96.0);
  const std::string baseline_dir = args.get("baseline-dir", "");
  const std::vector<std::string>& files = args.positional();
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: scaling_check [--baseline-dir=<dir>] [--slack=F] "
                 "[--tolerance=F] [--gini-cap=PPM] [--rss-factor=F] "
                 "[--rss-floor-mb=F] [--wall-tolerance=F] "
                 "[--wall-floor-ms=F] BENCH_*.json...\n");
    return 2;
  }

  for (const std::string& file : files) {
    Json doc;
    try {
      doc = Json::parse_file(file);
    } catch (const dmpc::ParseError& e) {
      std::fprintf(stderr, "error: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
    std::printf("== %s (%s) ==\n", doc.at("bench").as_string().c_str(),
                file.c_str());
    check_envelopes(doc, slack, rss_factor, rss_floor_mb);
    check_skew_band(doc, gini_cap_ppm);
    if (!baseline_dir.empty()) {
      std::string name = file;
      const auto slash = name.find_last_of('/');
      if (slash != std::string::npos) name = name.substr(slash + 1);
      const std::string baseline_path = baseline_dir + "/" + name;
      try {
        const Json baseline = Json::parse_file(baseline_path);
        compare_to_baseline(doc, baseline, tolerance);
        if (wall_tolerance > 0.0) {
          compare_wall_to_baseline(doc, baseline, wall_tolerance,
                                   wall_floor_ms);
        }
      } catch (const dmpc::ParseError& e) {
        fail(doc.at("bench").as_string() + ".baseline",
             baseline_path + ": " + e.what());
      }
    }
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "scaling_check: %d failing series\n", g_failures);
    return 1;
  }
  std::printf("scaling_check: all gates passed\n");
  return 0;
}
