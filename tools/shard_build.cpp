// shard_build — convert a text edge list into a .dshard directory for the
// mmap storage backend (mpc/shard_format.hpp, docs/STORAGE.md).
//
//   shard_build --in=g.txt --out=shards/ [--eps=0.5] [--space-headroom=8]
//               [--shard-words=N] [--rss-budget-mb=256]
//
// The build is a streaming two-pass over the input: peak resident memory is
// O(n) host arrays plus a bounded dirty-page budget, never O(m). Shard
// boundaries follow the simulator's machine-space derivation for (n, eps)
// unless --shard-words pins an exact size. A malformed input (or an input
// that changes between the passes) is reported as a typed parse error with
// exit 2, matching the dmpc CLI's exit-code contract; nothing is left
// mapped on failure.
#include <cstdio>
#include <string>

#include "mpc/shard_format.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/parse_error.hpp"

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const std::string in = args.get("in", "");
  const std::string out = args.get("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr,
                 "usage: shard_build --in=<edge list> --out=<dir> "
                 "[--eps=0.5] [--space-headroom=8] [--shard-words=N] "
                 "[--rss-budget-mb=256]\n");
    return 2;
  }
  try {
    dmpc::mpc::ShardBuildOptions options;
    options.eps = args.require_double("eps", options.eps);
    options.space_headroom =
        args.require_double("space-headroom", options.space_headroom);
    options.shard_words = static_cast<std::uint64_t>(
        args.require_int("shard-words", 0));
    options.rss_budget_bytes =
        static_cast<std::uint64_t>(args.require_int("rss-budget-mb", 256))
        << 20;
    const auto stats = dmpc::mpc::shard_build(in, out, options);
    std::printf("sharded n=%llu m=%llu shards=%llu bytes=%llu -> %s\n",
                (unsigned long long)stats.n, (unsigned long long)stats.m,
                (unsigned long long)stats.shards,
                (unsigned long long)stats.total_bytes, out.c_str());
    return 0;
  } catch (const dmpc::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const dmpc::CheckFailure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
