// trace_analyze — offline analyzer for dmpc traces and profile blocks.
//
//   ./trace_analyze [--top=10] [--folded=out.folded] trace.jsonl
//   ./trace_analyze --report=metrics.json [--gate=thresholds.json]
//   ./trace_analyze --gate=thresholds.json --report=BENCH_E2.json
//
// With a trace file (JSONL or Chrome trace-event JSON, auto-detected) it
// reconstructs the span tree and prints the round-DAG critical path and the
// top-k hot spans per phase (the name prefix up to the first '/'), and can
// write folded flamegraph stacks (--folded) for FlameGraph-style renderers.
//
// With --report it reads a report JSON (schema_version 5, `profile` block)
// or a bench artifact (BENCH_*.json whose points embed `profile`) and prints
// a skew report; when the document carries a `host_samples` block
// (--host-sample-ms runs) the sampler's taken/dropped counts are surfaced
// too. A report without any profile block — or with an empty one — is a
// typed one-line `no_profile:` / `empty_profile:` error (exit 2), never a
// crash or a silently empty report. --gate evaluates every profile block
// against a threshold document (see obs/trace_analysis.hpp) and exits 1
// naming the offending labels and round ranges — the CI bench-smoke job
// runs this on uploaded artifacts.
//
// Exit codes: 0 analysis ok / gate passed; 1 gate violations; 2 usage,
// unreadable input, missing/empty profile, or parse errors.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"
#include "support/json.hpp"
#include "support/options.hpp"
#include "support/parse_error.hpp"

namespace {

using dmpc::Json;
using dmpc::obs::CriticalPathEntry;
using dmpc::obs::HotSpan;
using dmpc::obs::TraceAnalysis;

std::string phase_of(const std::string& name) {
  const auto slash = name.find('/');
  return slash == std::string::npos ? name : name.substr(0, slash);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw dmpc::ParseError(dmpc::ParseErrorCode::kIoError,
                           "cannot open trace '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void print_one_path(const TraceAnalysis& analysis, dmpc::obs::PathWeight weight,
                    const char* kind, std::uint64_t total) {
  const auto path = dmpc::obs::critical_path(analysis, weight);
  std::printf("critical path (%s-weighted, %llu total):\n", kind,
              static_cast<unsigned long long>(total));
  for (const CriticalPathEntry& entry : path) {
    const auto& span = analysis.spans[entry.span];
    std::printf("  %*s%-40s inclusive=%llu self=%llu\n",
                static_cast<int>(2 * span.depth), "", span.name.c_str(),
                static_cast<unsigned long long>(entry.inclusive),
                static_cast<unsigned long long>(entry.self));
  }
}

void print_critical_path(const TraceAnalysis& analysis) {
  const bool use_rounds = analysis.total_rounds > 0;
  print_one_path(analysis,
                 use_rounds ? dmpc::obs::PathWeight::kRounds
                            : dmpc::obs::PathWeight::kWall,
                 use_rounds ? "rounds" : "wall_ns",
                 use_rounds ? analysis.total_rounds : analysis.total_wall_ns);
  // The model path (rounds) and host path (wall) usually disagree: spans
  // that charge few rounds can dominate wall time (the derand CE sweep).
  // Print both when the trace carries both weights.
  if (use_rounds && analysis.has_wall) {
    print_one_path(analysis, dmpc::obs::PathWeight::kWall, "wall_ns",
                   analysis.total_wall_ns);
  }
}

void print_hot_spans(const TraceAnalysis& analysis, std::uint64_t top) {
  const auto hot = dmpc::obs::hot_spans(analysis);
  // Group by phase, preserving the global hotness order within each group.
  std::vector<std::string> phases;
  for (const HotSpan& span : hot) {
    const std::string phase = phase_of(span.name);
    bool seen = false;
    for (const std::string& p : phases) seen = seen || p == phase;
    if (!seen) phases.push_back(phase);
  }
  for (const std::string& phase : phases) {
    std::printf("hot spans [%s]:\n", phase.c_str());
    std::uint64_t printed = 0;
    for (const HotSpan& span : hot) {
      if (phase_of(span.name) != phase) continue;
      if (printed++ >= top) break;
      std::printf("  %-44s x%llu self_rounds=%llu self_wall_ns=%llu comm=%llu\n",
                  span.name.c_str(),
                  static_cast<unsigned long long>(span.count),
                  static_cast<unsigned long long>(span.self_rounds),
                  static_cast<unsigned long long>(span.self_wall_ns),
                  static_cast<unsigned long long>(span.communication));
    }
  }
}

/// Lenient field access for skew printing: a missing key prints as 0 instead
/// of tripping the at() invariant check — the typed empty_profile error has
/// already rejected blocks with no content at all.
std::int64_t field_or_zero(const Json& object, const char* key) {
  const Json* value = object.find(key);
  return value != nullptr ? value->as_int64() : 0;
}

void print_skew_report(const std::string& context, const Json& profile) {
  std::printf("profile [%s]: records=%llu dropped=%llu load_max=%llu "
              "gini_max_ppm=%llu\n",
              context.c_str(),
              static_cast<unsigned long long>(
                  field_or_zero(profile, "records_committed")),
              static_cast<unsigned long long>(
                  field_or_zero(profile, "records_dropped")),
              static_cast<unsigned long long>(
                  field_or_zero(profile, "load_max")),
              static_cast<unsigned long long>(
                  field_or_zero(profile, "gini_max_ppm")));
  if (const Json* labels = profile.find("by_label"); labels != nullptr) {
    for (const auto& [label, s] : labels->fields()) {
      std::printf("  %-44s records=%lld rounds=%lld load_max=%lld "
                  "gini_max_ppm=%lld\n",
                  label.c_str(),
                  static_cast<long long>(field_or_zero(s, "records")),
                  static_cast<long long>(field_or_zero(s, "rounds")),
                  static_cast<long long>(field_or_zero(s, "load_max")),
                  static_cast<long long>(field_or_zero(s, "gini_max_ppm")));
    }
  }
}

/// `host_samples` rides along in --metrics-out documents when the solve ran
/// a host sampler; dropped = ring overwrites (docs/OBSERVABILITY.md).
void print_host_samples(const Json& doc) {
  const Json* samples = doc.find("host_samples");
  if (samples == nullptr) return;
  std::printf("host samples: taken=%llu samples_dropped=%llu "
              "interval_ms=%llu\n",
              static_cast<unsigned long long>(field_or_zero(*samples, "taken")),
              static_cast<unsigned long long>(
                  field_or_zero(*samples, "dropped")),
              static_cast<unsigned long long>(
                  field_or_zero(*samples, "interval_ms")));
}

/// A report JSON carries one top-level `profile`; a bench artifact embeds
/// one per point. Returns (context, profile) pairs.
std::vector<std::pair<std::string, const Json*>> find_profiles(
    const Json& doc) {
  std::vector<std::pair<std::string, const Json*>> out;
  if (const Json* profile = doc.find("profile"); profile != nullptr) {
    out.emplace_back("report", profile);
    return out;
  }
  const Json* points = doc.find("points");
  if (points == nullptr) return out;
  const std::string bench =
      doc.find("bench") != nullptr ? doc.at("bench").as_string() : "bench";
  for (const Json& point : points->items()) {
    const Json* profile = point.find("profile");
    if (profile == nullptr) continue;
    const Json* axis = point.find("axis_value");
    std::string context = bench;
    if (axis != nullptr) {
      context += "." + (axis->is_string() ? axis->as_string()
                                          : std::to_string(axis->as_int64()));
    }
    out.emplace_back(std::move(context), profile);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const std::uint64_t top =
      static_cast<std::uint64_t>(args.get_int("top", 10));
  const std::string report_path = args.get("report", "");
  const std::string gate_path = args.get("gate", "");
  const std::string folded_path = args.get("folded", "");
  const std::vector<std::string>& traces = args.positional();
  if (traces.empty() && report_path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_analyze [--top=N] [--folded=out.folded] "
                 "[--report=report.json] [--gate=thresholds.json] "
                 "[trace.jsonl|trace.json]\n");
    return 2;
  }

  try {
    for (const std::string& path : traces) {
      std::printf("== %s ==\n", path.c_str());
      const TraceAnalysis analysis =
          dmpc::obs::analyze_trace_text(read_file(path));
      std::printf("spans=%zu roots=%zu total_rounds=%llu\n",
                  analysis.spans.size(), analysis.roots.size(),
                  static_cast<unsigned long long>(analysis.total_rounds));
      print_critical_path(analysis);
      print_hot_spans(analysis, top);
      if (!folded_path.empty()) {
        std::ofstream out(folded_path, std::ios::binary);
        if (!out.good()) {
          std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                       folded_path.c_str());
          return 2;
        }
        out << dmpc::obs::folded_stacks(analysis);
        std::printf("folded stacks written to %s\n", folded_path.c_str());
      }
    }

    int gate_failures = 0;
    if (!report_path.empty()) {
      const Json doc = Json::parse_file(report_path);
      const auto profiles = find_profiles(doc);
      if (profiles.empty()) {
        std::fprintf(stderr,
                     "error: no_profile: %s carries no profile block "
                     "(run the solve with --profile)\n",
                     report_path.c_str());
        return 2;
      }
      Json thresholds = Json::object();
      if (!gate_path.empty()) thresholds = Json::parse_file(gate_path);
      for (const auto& [context, profile] : profiles) {
        if (!profile->is_object() || profile->fields().empty()) {
          std::fprintf(stderr,
                       "error: empty_profile: %s [%s] profile block has no "
                       "fields\n",
                       report_path.c_str(), context.c_str());
          return 2;
        }
        print_skew_report(context, *profile);
        if (gate_path.empty()) continue;
        const auto violations =
            dmpc::obs::check_profile_gate(*profile, thresholds, context);
        for (const auto& v : violations) {
          std::fprintf(stderr, "GATE %s: %s\n", v.series.c_str(),
                       v.detail.c_str());
        }
        gate_failures += static_cast<int>(violations.size());
      }
      print_host_samples(doc);
    }
    if (gate_failures > 0) {
      std::fprintf(stderr, "trace_analyze: %d gate violations\n",
                   gate_failures);
      return 1;
    }
  } catch (const dmpc::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
