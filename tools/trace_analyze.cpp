// trace_analyze — offline analyzer for dmpc traces and profile blocks.
//
//   ./trace_analyze [--top=10] [--folded=out.folded] trace.jsonl
//   ./trace_analyze --report=metrics.json [--gate=thresholds.json]
//   ./trace_analyze --gate=thresholds.json --report=BENCH_E2.json
//
// With a trace file (JSONL or Chrome trace-event JSON, auto-detected) it
// reconstructs the span tree and prints the round-DAG critical path and the
// top-k hot spans per phase (the name prefix up to the first '/'), and can
// write folded flamegraph stacks (--folded) for FlameGraph-style renderers.
//
// With --report it reads a report JSON (schema_version 5, `profile` block)
// or a bench artifact (BENCH_*.json whose points embed `profile`) and prints
// a skew report. --gate evaluates every profile block against a threshold
// document (see obs/trace_analysis.hpp) and exits 1 naming the offending
// labels and round ranges — the CI bench-smoke job runs this on uploaded
// artifacts.
//
// Exit codes: 0 analysis ok / gate passed; 1 gate violations; 2 usage,
// unreadable input, or parse errors.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"
#include "support/json.hpp"
#include "support/options.hpp"
#include "support/parse_error.hpp"

namespace {

using dmpc::Json;
using dmpc::obs::CriticalPathEntry;
using dmpc::obs::HotSpan;
using dmpc::obs::TraceAnalysis;

std::string phase_of(const std::string& name) {
  const auto slash = name.find('/');
  return slash == std::string::npos ? name : name.substr(0, slash);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw dmpc::ParseError(dmpc::ParseErrorCode::kIoError,
                           "cannot open trace '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void print_one_path(const TraceAnalysis& analysis, dmpc::obs::PathWeight weight,
                    const char* kind, std::uint64_t total) {
  const auto path = dmpc::obs::critical_path(analysis, weight);
  std::printf("critical path (%s-weighted, %llu total):\n", kind,
              static_cast<unsigned long long>(total));
  for (const CriticalPathEntry& entry : path) {
    const auto& span = analysis.spans[entry.span];
    std::printf("  %*s%-40s inclusive=%llu self=%llu\n",
                static_cast<int>(2 * span.depth), "", span.name.c_str(),
                static_cast<unsigned long long>(entry.inclusive),
                static_cast<unsigned long long>(entry.self));
  }
}

void print_critical_path(const TraceAnalysis& analysis) {
  const bool use_rounds = analysis.total_rounds > 0;
  print_one_path(analysis,
                 use_rounds ? dmpc::obs::PathWeight::kRounds
                            : dmpc::obs::PathWeight::kWall,
                 use_rounds ? "rounds" : "wall_ns",
                 use_rounds ? analysis.total_rounds : analysis.total_wall_ns);
  // The model path (rounds) and host path (wall) usually disagree: spans
  // that charge few rounds can dominate wall time (the derand CE sweep).
  // Print both when the trace carries both weights.
  if (use_rounds && analysis.has_wall) {
    print_one_path(analysis, dmpc::obs::PathWeight::kWall, "wall_ns",
                   analysis.total_wall_ns);
  }
}

void print_hot_spans(const TraceAnalysis& analysis, std::uint64_t top) {
  const auto hot = dmpc::obs::hot_spans(analysis);
  // Group by phase, preserving the global hotness order within each group.
  std::vector<std::string> phases;
  for (const HotSpan& span : hot) {
    const std::string phase = phase_of(span.name);
    bool seen = false;
    for (const std::string& p : phases) seen = seen || p == phase;
    if (!seen) phases.push_back(phase);
  }
  for (const std::string& phase : phases) {
    std::printf("hot spans [%s]:\n", phase.c_str());
    std::uint64_t printed = 0;
    for (const HotSpan& span : hot) {
      if (phase_of(span.name) != phase) continue;
      if (printed++ >= top) break;
      std::printf("  %-44s x%llu self_rounds=%llu self_wall_ns=%llu comm=%llu\n",
                  span.name.c_str(),
                  static_cast<unsigned long long>(span.count),
                  static_cast<unsigned long long>(span.self_rounds),
                  static_cast<unsigned long long>(span.self_wall_ns),
                  static_cast<unsigned long long>(span.communication));
    }
  }
}

void print_skew_report(const std::string& context, const Json& profile) {
  std::printf("profile [%s]: records=%llu dropped=%llu load_max=%llu "
              "gini_max_ppm=%llu\n",
              context.c_str(),
              static_cast<unsigned long long>(
                  profile.at("records_committed").as_int64()),
              static_cast<unsigned long long>(
                  profile.at("records_dropped").as_int64()),
              static_cast<unsigned long long>(
                  profile.at("load_max").as_int64()),
              static_cast<unsigned long long>(
                  profile.at("gini_max_ppm").as_int64()));
  if (const Json* labels = profile.find("by_label"); labels != nullptr) {
    for (const auto& [label, s] : labels->fields()) {
      std::printf("  %-44s records=%lld rounds=%lld load_max=%lld "
                  "gini_max_ppm=%lld\n",
                  label.c_str(),
                  static_cast<long long>(s.at("records").as_int64()),
                  static_cast<long long>(s.at("rounds").as_int64()),
                  static_cast<long long>(s.at("load_max").as_int64()),
                  static_cast<long long>(s.at("gini_max_ppm").as_int64()));
    }
  }
}

/// A report JSON carries one top-level `profile`; a bench artifact embeds
/// one per point. Returns (context, profile) pairs.
std::vector<std::pair<std::string, const Json*>> find_profiles(
    const Json& doc) {
  std::vector<std::pair<std::string, const Json*>> out;
  if (const Json* profile = doc.find("profile"); profile != nullptr) {
    out.emplace_back("report", profile);
    return out;
  }
  const Json* points = doc.find("points");
  if (points == nullptr) return out;
  const std::string bench =
      doc.find("bench") != nullptr ? doc.at("bench").as_string() : "bench";
  for (const Json& point : points->items()) {
    const Json* profile = point.find("profile");
    if (profile == nullptr) continue;
    const Json* axis = point.find("axis_value");
    std::string context = bench;
    if (axis != nullptr) {
      context += "." + (axis->is_string() ? axis->as_string()
                                          : std::to_string(axis->as_int64()));
    }
    out.emplace_back(std::move(context), profile);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const dmpc::ArgParser args(argc, argv);
  const std::uint64_t top =
      static_cast<std::uint64_t>(args.get_int("top", 10));
  const std::string report_path = args.get("report", "");
  const std::string gate_path = args.get("gate", "");
  const std::string folded_path = args.get("folded", "");
  const std::vector<std::string>& traces = args.positional();
  if (traces.empty() && report_path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_analyze [--top=N] [--folded=out.folded] "
                 "[--report=report.json] [--gate=thresholds.json] "
                 "[trace.jsonl|trace.json]\n");
    return 2;
  }

  try {
    for (const std::string& path : traces) {
      std::printf("== %s ==\n", path.c_str());
      const TraceAnalysis analysis =
          dmpc::obs::analyze_trace_text(read_file(path));
      std::printf("spans=%zu roots=%zu total_rounds=%llu\n",
                  analysis.spans.size(), analysis.roots.size(),
                  static_cast<unsigned long long>(analysis.total_rounds));
      print_critical_path(analysis);
      print_hot_spans(analysis, top);
      if (!folded_path.empty()) {
        std::ofstream out(folded_path, std::ios::binary);
        if (!out.good()) {
          std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                       folded_path.c_str());
          return 2;
        }
        out << dmpc::obs::folded_stacks(analysis);
        std::printf("folded stacks written to %s\n", folded_path.c_str());
      }
    }

    int gate_failures = 0;
    if (!report_path.empty()) {
      const Json doc = Json::parse_file(report_path);
      const auto profiles = find_profiles(doc);
      if (profiles.empty()) {
        std::printf("note: %s carries no profile block (solve ran without "
                    "--profile)\n",
                    report_path.c_str());
      }
      Json thresholds = Json::object();
      if (!gate_path.empty()) thresholds = Json::parse_file(gate_path);
      for (const auto& [context, profile] : profiles) {
        print_skew_report(context, *profile);
        if (gate_path.empty()) continue;
        const auto violations =
            dmpc::obs::check_profile_gate(*profile, thresholds, context);
        for (const auto& v : violations) {
          std::fprintf(stderr, "GATE %s: %s\n", v.series.c_str(),
                       v.detail.c_str());
        }
        gate_failures += static_cast<int>(violations.size());
      }
    }
    if (gate_failures > 0) {
      std::fprintf(stderr, "trace_analyze: %d gate violations\n",
                   gate_failures);
      return 1;
    }
  } catch (const dmpc::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
