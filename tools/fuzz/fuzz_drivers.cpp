#include "fuzz_drivers.hpp"

#include <sstream>
#include <string>
#include <vector>

#include "api/cli_options.hpp"
#include "api/status.hpp"
#include "graph/io.hpp"
#include "mpc/faults.hpp"
#include "mpc/io_faults.hpp"
#include "mpc/shard_format.hpp"
#include "obs/events.hpp"
#include "support/options.hpp"
#include "support/parse_error.hpp"

namespace dmpc::fuzz {
namespace {

// Small caps so the fuzzer explores the limit checks instead of timing out
// on genuinely huge (but well-formed) inputs.
graph::EdgeListLimits fuzz_limits(graph::DuplicatePolicy policy) {
  graph::EdgeListLimits limits;
  limits.max_nodes = 1u << 16;
  limits.max_edges = 1u << 16;
  limits.max_line_bytes = 1u << 12;
  limits.duplicates = policy;
  return limits;
}

void read_one(const std::string& text, graph::DuplicatePolicy policy) {
  try {
    std::istringstream in(text);
    const graph::Graph g = graph::read_edge_list(in, fuzz_limits(policy));
    // Accepted input must survive a write/re-read round trip unchanged in
    // shape. The re-read uses kReject: the writer never emits duplicates.
    std::ostringstream out;
    graph::write_edge_list(g, out);
    std::istringstream back(out.str());
    const graph::Graph g2 =
        graph::read_edge_list(back, fuzz_limits(graph::DuplicatePolicy::kReject));
    if (g2.num_nodes() != g.num_nodes() || g2.num_edges() != g.num_edges()) {
      __builtin_trap();
    }
  } catch (const ParseError&) {
    // Typed rejection: the expected outcome for malformed input.
  }
}

}  // namespace

int drive_edge_list(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  read_one(text, graph::DuplicatePolicy::kReject);
  read_one(text, graph::DuplicatePolicy::kDedupe);
  return 0;
}

int drive_fault_plan(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const mpc::FaultPlan plan = mpc::FaultPlan::parse(text);
    // An accepted plan must be internally consistent.
    if (!plan.check().empty()) __builtin_trap();
  } catch (const ParseError&) {
  }
  return 0;
}

int drive_cli_args(const std::uint8_t* data, std::size_t size) {
  // One argument per line, capped so a pathological input cannot allocate
  // an unbounded argv.
  constexpr std::size_t kMaxArgs = 64;
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::vector<std::string> argv_storage;
  std::istringstream lines(text);
  std::string line;
  while (argv_storage.size() < kMaxArgs && std::getline(lines, line)) {
    argv_storage.push_back(line);
  }
  std::vector<const char*> argv;
  argv.reserve(argv_storage.size() + 1);
  argv.push_back("dmpc");  // ArgParser skips argv[0]
  for (const std::string& arg : argv_storage) argv.push_back(arg.c_str());
  try {
    const ArgParser args(static_cast<int>(argv.size()), argv.data());
    (void)parse_solve_options(args);
  } catch (const ParseError&) {
  } catch (const OptionsError&) {
  }
  return 0;
}

int drive_shard_header(const std::uint8_t* data, std::size_t size) {
  // Same cap philosophy as fuzz_limits: small n/m ceilings steer the fuzzer
  // into the limit checks rather than huge well-formed declarations (the
  // parser's allocation is bounded by `size` regardless).
  graph::EdgeListLimits limits;
  limits.max_nodes = 1u << 16;
  limits.max_edges = 1u << 16;
  try {
    const mpc::ShardManifest manifest =
        mpc::parse_shard_manifest(data, size, limits);
    // An accepted manifest must survive an encode/re-parse round trip with
    // its totals intact. The encoder always emits the current (checksummed)
    // version, so a v1 input upgrades to v2 with zero shard checksums and a
    // freshly stamped digest; a v2 input must keep its checksums verbatim.
    const auto bytes = mpc::encode_shard_manifest(manifest);
    const mpc::ShardManifest back =
        mpc::parse_shard_manifest(bytes.data(), bytes.size(), limits);
    if (back.n != manifest.n || back.m != manifest.m ||
        back.shards.size() != manifest.shards.size()) {
      __builtin_trap();
    }
    if (back.version != mpc::kShardFormatVersion || !back.has_checksums()) {
      __builtin_trap();
    }
    if (back.digest != mpc::manifest_digest(bytes.data(), bytes.size())) {
      __builtin_trap();
    }
    for (std::size_t i = 0; i < back.shards.size(); ++i) {
      const std::uint64_t want =
          manifest.has_checksums() ? manifest.shards[i].crc64 : 0;
      if (back.shards[i].crc64 != want) __builtin_trap();
    }
  } catch (const ParseError&) {
  }
  return 0;
}

int drive_io_fault_plan(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const mpc::IoFaultPlan plan = mpc::IoFaultPlan::parse(text);
    // An accepted plan must be internally consistent, and its printed form
    // must re-parse to the same plan (print/parse is the identity on
    // admissible plans — the CLI round-trips --io-fault-plan files).
    if (!plan.check().empty()) __builtin_trap();
    const std::string printed = plan.to_string();
    const mpc::IoFaultPlan back = mpc::IoFaultPlan::parse(printed);
    if (back.events().size() != plan.events().size()) __builtin_trap();
    if (back.to_string() != printed) __builtin_trap();
  } catch (const ParseError&) {
  }
  // The non-throwing overload must agree with the throwing one.
  std::string error;
  (void)mpc::IoFaultPlan::parse(text, &error);
  return 0;
}

int drive_event_filter(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const obs::EventFilter filter = obs::parse_event_filter(text);
    // An accepted filter must be non-empty (the grammar rejects empty
    // lists) and survive the canonical print/re-parse round trip — the
    // contract event_filter_to_string documents.
    if (filter.mask() == 0) __builtin_trap();
    const std::string printed = obs::event_filter_to_string(filter);
    const obs::EventFilter back = obs::parse_event_filter(printed);
    if (back.mask() != filter.mask()) __builtin_trap();
    if (obs::event_filter_to_string(back) != printed) __builtin_trap();
  } catch (const OptionsError& e) {
    // Typed rejection: must carry the matching status code.
    if (e.status().code() != StatusCode::kInvalidEventFilter) __builtin_trap();
  }
  return 0;
}

}  // namespace dmpc::fuzz
