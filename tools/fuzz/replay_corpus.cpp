// Replay the checked-in fuzz regression corpus through the shared drivers.
//
//   replay_corpus <corpus-root>
//
// <corpus-root> contains one subdirectory per target (edge_list/,
// fault_plan/, cli_args/, shard_header/, io_fault_plan/, event_filter/);
// every regular
// file inside is fed to the matching driver. Runs as a plain ctest test in every build (no fuzzer runtime
// needed), so crashes found by fuzzing and checked into the corpus stay
// fixed. Exits non-zero if a directory is missing/empty or a driver lets an
// untyped error escape.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_drivers.hpp"

namespace {

using Driver = int (*)(const std::uint8_t*, std::size_t);

int replay_dir(const std::filesystem::path& dir, Driver driver) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "replay_corpus: missing corpus directory %s\n",
                 dir.string().c_str());
    return 1;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  if (files.empty()) {
    std::fprintf(stderr, "replay_corpus: empty corpus directory %s\n",
                 dir.string().c_str());
    return 1;
  }
  // Sort for a deterministic replay order across filesystems.
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    const std::string data = bytes.str();
    try {
      driver(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "replay_corpus: %s escaped the driver on %s: %s\n",
                   "untyped error", path.string().c_str(), e.what());
      return 1;
    }
  }
  std::printf("replayed %zu inputs from %s\n", files.size(),
              dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: replay_corpus <corpus-root>\n");
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  int rc = 0;
  rc |= replay_dir(root / "edge_list", &dmpc::fuzz::drive_edge_list);
  rc |= replay_dir(root / "fault_plan", &dmpc::fuzz::drive_fault_plan);
  rc |= replay_dir(root / "cli_args", &dmpc::fuzz::drive_cli_args);
  rc |= replay_dir(root / "shard_header", &dmpc::fuzz::drive_shard_header);
  rc |= replay_dir(root / "io_fault_plan", &dmpc::fuzz::drive_io_fault_plan);
  rc |= replay_dir(root / "event_filter", &dmpc::fuzz::drive_event_filter);
  return rc;
}
