// libFuzzer target: --events-filter grammar. Build with -DDMPC_FUZZ=ON.
#include <cstddef>
#include <cstdint>

#include "fuzz_drivers.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dmpc::fuzz::drive_event_filter(data, size);
}
