// Shared fuzz drivers for the untrusted-input surfaces.
//
// Each driver feeds raw bytes to one hardened parser and swallows only the
// typed rejection path (ParseError, OptionsError). Anything else escaping —
// a raw DMPC_CHECK failure, a std::bad_alloc from an unclamped allocation,
// or sanitizer-detected UB — is a finding: the libFuzzer targets
// (fuzz_*.cpp) report it as a crash, and the corpus replay binary
// (replay_corpus.cpp) fails the ctest run.
//
// The same drivers back both entry points so a crash found by the fuzzer
// and checked into the corpus is replayed forever by plain test runs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dmpc::fuzz {

/// graph::read_edge_list with small hard caps, under both duplicate
/// policies, plus a write/re-read round trip on accepted graphs.
int drive_edge_list(const std::uint8_t* data, std::size_t size);

/// mpc::FaultPlan::parse (the throwing overload).
int drive_fault_plan(const std::uint8_t* data, std::size_t size);

/// Newline-split argv through ArgParser + parse_solve_options, i.e. the
/// exact flag-parsing surface of the dmpc CLI.
int drive_cli_args(const std::uint8_t* data, std::size_t size);

/// mpc::parse_shard_manifest over raw bytes (the binary header/entry-table
/// validator of the dshard storage format, v1 and checksummed v2), with an
/// encode/re-parse round trip on accepted manifests.
int drive_shard_header(const std::uint8_t* data, std::size_t size);

/// mpc::IoFaultPlan::parse (the throwing overload), with a print/re-parse
/// round trip on admissible plans.
int drive_io_fault_plan(const std::uint8_t* data, std::size_t size);

/// obs::parse_event_filter (the --events-filter grammar), with a
/// to_string/re-parse round trip on accepted filters.
int drive_event_filter(const std::uint8_t* data, std::size_t size);

}  // namespace dmpc::fuzz
